//! Logical time for coherent hierarchies.
//!
//! The snooping-bus model must be deterministic under the work-stealing
//! executor, so it cannot order events by wallclock (which `uca lint`
//! confines to this crate anyway, and which would differ run to run).
//! Instead every hierarchy access advances a [`LogicalClock`]: a plain
//! monotone counter whose ticks *are* the event order. Because one
//! hierarchy is driven by exactly one task, the tick sequence is a pure
//! function of the input trace — byte-identical across `--jobs 1/2/8`.
//!
//! The tick values feed the dead-time/live-time lens
//! (`unicache_stats::LifetimeLens`): a line's residency is measured in
//! accesses observed by its cache, the standard trace-driven notion of
//! time.

/// A monotone logical counter (no wallclock, no atomics — one owner).
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    now: u64,
}

impl LogicalClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        LogicalClock { now: 0 }
    }

    /// Advances time by one event and returns the new tick (first call
    /// returns 1; tick 0 is "before anything happened").
    #[inline]
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// The current tick without advancing.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Rewinds to tick 0 (hierarchy flush).
    pub fn reset(&mut self) {
        self.now = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotone_and_dense() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
        c.reset();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
    }
}
