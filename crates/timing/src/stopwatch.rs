//! A minimal monotonic stopwatch — the one wall-clock primitive the rest
//! of the workspace is allowed to consume.
//!
//! The determinism lint (`uca lint`, rule `wallclock`) confines
//! `Instant`/`SystemTime` to this crate so simulated *results* can never
//! depend on the host clock. Code that legitimately measures elapsed real
//! time — the `xp --timing` report, the parallel executor's per-job
//! accounting — goes through [`Stopwatch`] instead of importing `Instant`
//! directly, which keeps the exemption surface to a single module.
//!
//! Wall-clock readings taken through this type must never feed back into
//! simulation state or experiment tables; they are only ever reported
//! (stderr timing summaries, `--timing-json`).

use std::time::Instant;

/// A started monotonic timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (584 years — unreachable in practice, but the cast is
    /// checked anyway).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_and_consistent() {
        let sw = Stopwatch::start();
        let n1 = sw.elapsed_nanos();
        let s1 = sw.elapsed_secs();
        let n2 = sw.elapsed_nanos();
        assert!(s1 >= 0.0);
        assert!(n2 >= n1, "nanos must not go backwards");
    }
}
