//! AMAT formulas — paper Eq. 8 (adaptive cache), Eq. 9 (column-associative)
//! and companions.

use crate::latency::LatencyModel;
use unicache_core::CacheStats;

/// Conventional cache AMAT: `hit_time + miss_rate × miss_penalty`.
pub fn amat_conventional(stats: &CacheStats, lat: &LatencyModel) -> f64 {
    lat.l1_hit + stats.miss_rate() * lat.l1_miss_penalty
}

/// Paper Eq. 8 — adaptive group-associative cache:
///
/// ```text
/// AMAT = FracDirectHits × 1cy + (1 − FracDirectHits) × 3cy
///      + MissRate × MissPenalty
/// ```
///
/// `FracDirectHits` is the fraction of *hits* served by the primary
/// location; the remainder went through the OUT directory.
pub fn amat_adaptive(stats: &CacheStats, lat: &LatencyModel) -> f64 {
    let fd = stats.fraction_direct_hits();
    fd * lat.l1_hit + (1.0 - fd) * lat.out_hit + stats.miss_rate() * lat.l1_miss_penalty
}

/// Paper Eq. 9 — column-associative cache:
///
/// ```text
/// AMAT = FracRehashHits × 2cy + (1 − FracRehashHits) × 1cy
///      + FracRehashMisses × MissRate × (MissPenalty + 1)
///      + (1 − FracRehashMisses) × MissRate × MissPenalty
/// ```
///
/// `FracRehashHits` is the fraction of hits found at the second probe;
/// `FracRehashMisses` the fraction of misses that performed (and lost)
/// the second probe.
pub fn amat_column_associative(stats: &CacheStats, lat: &LatencyModel) -> f64 {
    let fr_hit = stats.fraction_secondary_hits();
    let fr_miss = stats.fraction_probed_misses();
    let mr = stats.miss_rate();
    fr_hit * lat.rehash_hit
        + (1.0 - fr_hit) * lat.l1_hit
        + fr_miss * mr * (lat.l1_miss_penalty + lat.probed_miss_extra)
        + (1.0 - fr_miss) * mr * lat.l1_miss_penalty
}

/// Exact per-access accounting over the full `HitWhere` taxonomy:
///
/// * primary hit → `l1_hit`
/// * secondary hit → `secondary_cost` (2 cy for column/partner, 3 cy for
///   OUT hits — pass the right constant)
/// * direct miss → `l1_hit + penalty`
/// * probed miss → `secondary_cost + penalty`
///
/// Unlike the paper's formulas (which average hit time over all accesses,
/// including misses), this charges each access its own path, making it the
/// reference the formula-based values are sanity-checked against in tests
/// and the `xp fig7 --exact` variant.
pub fn amat_exact(stats: &CacheStats, secondary_cost: f64, lat: &LatencyModel) -> f64 {
    let total = stats.accesses();
    if total == 0 {
        return 0.0;
    }
    let cycles = stats.primary_hits as f64 * lat.l1_hit
        + stats.secondary_hits as f64 * secondary_cost
        + stats.misses_direct as f64 * (lat.l1_hit + lat.l1_miss_penalty)
        + stats.misses_after_probe as f64 * (secondary_cost + lat.l1_miss_penalty);
    cycles / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicache_core::HitWhere;

    fn lat() -> LatencyModel {
        LatencyModel::with_miss_penalty(10.0)
    }

    fn stats_with(primary: u64, secondary: u64, miss_direct: u64, miss_probed: u64) -> CacheStats {
        let mut s = CacheStats::new(4);
        for _ in 0..primary {
            s.record(0, HitWhere::Primary);
        }
        for _ in 0..secondary {
            s.record(1, HitWhere::Secondary);
        }
        for _ in 0..miss_direct {
            s.record(2, HitWhere::MissDirect);
        }
        for _ in 0..miss_probed {
            s.record(3, HitWhere::MissAfterProbe);
        }
        s
    }

    #[test]
    fn conventional_formula() {
        // 90% hit: 1 + 0.1 * 10 = 2.0
        let s = stats_with(90, 0, 10, 0);
        assert!((amat_conventional(&s, &lat()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_hits_amat_is_hit_time() {
        let s = stats_with(100, 0, 0, 0);
        assert_eq!(amat_conventional(&s, &lat()), 1.0);
        assert_eq!(amat_adaptive(&s, &lat()), 1.0);
        assert_eq!(amat_column_associative(&s, &lat()), 1.0);
        assert_eq!(amat_exact(&s, 2.0, &lat()), 1.0);
    }

    #[test]
    fn eq8_adaptive() {
        // 60 direct hits, 20 OUT hits, 20 misses.
        // FracDirect = 0.75; miss rate 0.2.
        // AMAT = 0.75*1 + 0.25*3 + 0.2*10 = 0.75 + 0.75 + 2 = 3.5
        let s = stats_with(60, 20, 20, 0);
        assert!((amat_adaptive(&s, &lat()) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn eq9_column() {
        // 60 direct hits, 20 rehash hits, 10 direct misses, 10 rehash
        // misses. FracRehashHits = 0.25; FracRehashMisses = 0.5; mr = 0.2.
        // AMAT = 0.25*2 + 0.75*1 + 0.5*0.2*11 + 0.5*0.2*10
        //      = 0.5 + 0.75 + 1.1 + 1.0 = 3.35
        let s = stats_with(60, 20, 10, 10);
        assert!((amat_column_associative(&s, &lat()) - 3.35).abs() < 1e-12);
    }

    #[test]
    fn exact_accounting() {
        // Same mix, secondary cost 2:
        // (60*1 + 20*2 + 10*(1+10) + 10*(2+10)) / 100 = (60+40+110+120)/100
        let s = stats_with(60, 20, 10, 10);
        assert!((amat_exact(&s, 2.0, &lat()) - 3.3).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = CacheStats::new(4);
        assert_eq!(amat_exact(&s, 2.0, &lat()), 0.0);
        // Formula versions degrade to the hit-time constants.
        assert_eq!(amat_conventional(&s, &lat()), 1.0);
    }

    #[test]
    fn secondary_hits_raise_amat_relative_to_all_primary() {
        let all_primary = stats_with(100, 0, 0, 0);
        let some_secondary = stats_with(80, 20, 0, 0);
        assert!(
            amat_column_associative(&some_secondary, &lat())
                > amat_column_associative(&all_primary, &lat())
        );
        assert!(amat_adaptive(&some_secondary, &lat()) > amat_adaptive(&all_primary, &lat()));
    }

    #[test]
    fn formula_close_to_exact_for_column() {
        // The paper's Eq. 9 averages hit-time over all accesses; the exact
        // model charges per path. For hit-dominated mixes they agree
        // closely.
        let s = stats_with(900, 50, 30, 20);
        let f = amat_column_associative(&s, &lat());
        let e = amat_exact(&s, 2.0, &lat());
        assert!((f - e).abs() < 0.15, "formula {f} vs exact {e}");
    }
}
