//! Two-level hierarchy: pluggable L1 + the paper's unified L2 + memory.
//!
//! Mirrors the paper's simulated configuration: 32 KB L1 D/I caches backed
//! by a 256 KB unified LRU L2. Any [`CacheModel`] — including every
//! programmable-associativity scheme — slots in as the L1D. Cycle
//! accounting per reference:
//!
//! * L1 primary hit → `l1_hit`;
//! * L1 secondary hit → `secondary_cost` (set per scheme);
//! * L1 miss → add an L2 access (`l2_hit`); an L2 miss adds `memory`;
//! * dirty L1 victims are written back into the L2 (an L2 store).

use crate::latency::LatencyModel;
use unicache_core::{AccessKind, CacheModel, HitWhere, MemRecord};
use unicache_sim::{Cache, CacheBuilder};

/// A pluggable-L1 + unified-L2 memory hierarchy with cycle accounting.
pub struct Hierarchy {
    l1d: Box<dyn CacheModel>,
    l1i: Option<Cache>,
    l2: Cache,
    lat: LatencyModel,
    /// Cycle charged for an L1 secondary hit (2 for column/partner-style
    /// second probes, 3 for OUT-directory hits).
    secondary_cost: f64,
    cycles: f64,
    refs: u64,
}

impl Hierarchy {
    /// Builds the paper's configuration around the provided L1D model:
    /// 256 KB 4-way LRU unified L2, optional 32 KB direct-mapped L1I.
    pub fn paper(l1d: Box<dyn CacheModel>, secondary_cost: f64, lat: LatencyModel) -> Self {
        let l2 = CacheBuilder::new(unicache_core::CacheGeometry::paper_l2())
            .name("unified_l2")
            .build()
            .expect("paper L2 geometry is valid");
        Hierarchy {
            l1d,
            l1i: None,
            l2,
            lat,
            secondary_cost,
            cycles: 0.0,
            refs: 0,
        }
    }

    /// Adds a split instruction cache (32 KB direct-mapped, like the paper).
    pub fn with_l1i(mut self) -> Self {
        self.l1i = Some(
            CacheBuilder::new(unicache_core::CacheGeometry::paper_l1())
                .name("l1_instruction")
                .build()
                .expect("paper L1I geometry is valid"),
        );
        self
    }

    /// Simulates one reference, returning the cycles it cost.
    pub fn access(&mut self, rec: MemRecord) -> f64 {
        self.refs += 1;
        let mut cost;
        let (where_hit, evicted) = match rec.kind {
            AccessKind::InstFetch => {
                if let Some(l1i) = self.l1i.as_mut() {
                    let r = l1i.access(rec);
                    (r.where_hit, r.evicted)
                } else {
                    // No I-cache configured: treat fetches as data refs.
                    let r = self.l1d.access(rec);
                    (r.where_hit, r.evicted)
                }
            }
            _ => {
                let r = self.l1d.access(rec);
                (r.where_hit, r.evicted)
            }
        };
        match where_hit {
            HitWhere::Primary => {
                unicache_obs::count(unicache_obs::Event::HierL1Hit);
                cost = self.lat.l1_hit;
            }
            HitWhere::Secondary => {
                unicache_obs::count(unicache_obs::Event::HierL1SecondaryHit);
                cost = self.secondary_cost;
            }
            HitWhere::MissDirect | HitWhere::MissAfterProbe => {
                cost = if where_hit == HitWhere::MissDirect {
                    self.lat.l1_hit
                } else {
                    self.secondary_cost
                };
                // Fetch the line from L2.
                unicache_obs::count(unicache_obs::Event::HierL2Access);
                let l2r = self.l2.access(MemRecord {
                    kind: AccessKind::Read,
                    ..rec
                });
                cost += self.lat.l2_hit;
                if l2r.is_hit() {
                    unicache_obs::count(unicache_obs::Event::HierL2Hit);
                } else {
                    unicache_obs::count(unicache_obs::Event::HierMemoryAccess);
                    cost += self.lat.memory;
                }
                // Write back the dirty victim (L2 store, off the critical
                // path for latency but it perturbs L2 contents).
                if let Some(victim_block) = evicted {
                    unicache_obs::count(unicache_obs::Event::HierWriteback);
                    let victim_addr = self.l1d.geometry().block_base(victim_block);
                    self.l2
                        .access(MemRecord::write(victim_addr).with_tid(rec.tid));
                }
            }
        }
        self.cycles += cost;
        cost
    }

    /// Runs a whole trace.
    pub fn run(&mut self, trace: &[MemRecord]) {
        for &r in trace {
            self.access(r);
        }
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Measured AMAT: cycles per reference.
    pub fn amat(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.cycles / self.refs as f64
        }
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &dyn CacheModel {
        self.l1d.as_ref()
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Resets statistics and cycle counters (contents preserved).
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        if let Some(i) = self.l1i.as_mut() {
            i.reset_stats();
        }
        self.cycles = 0.0;
        self.refs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicache_core::CacheGeometry;
    use unicache_sim::CacheBuilder;

    fn dm_l1() -> Box<dyn CacheModel> {
        Box::new(
            CacheBuilder::new(CacheGeometry::paper_l1())
                .build()
                .unwrap(),
        )
    }

    fn lat() -> LatencyModel {
        LatencyModel {
            l1_hit: 1.0,
            l2_hit: 10.0,
            memory: 100.0,
            ..Default::default()
        }
    }

    #[test]
    fn cold_miss_pays_l2_and_memory() {
        let mut h = Hierarchy::paper(dm_l1(), 2.0, lat());
        let c = h.access(MemRecord::read(0x1000));
        assert_eq!(c, 1.0 + 10.0 + 100.0);
        // Second touch: L1 hit.
        let c = h.access(MemRecord::read(0x1000));
        assert_eq!(c, 1.0);
        // L1-conflicting line (32 KB apart) is an L2 hit on the refetch? It
        // was never fetched -> L2 miss; but after that, ping-ponging
        // between the two is L1 miss + L2 hit.
        let c = h.access(MemRecord::read(0x1000 + 32 * 1024));
        assert_eq!(c, 1.0 + 10.0 + 100.0);
        let c = h.access(MemRecord::read(0x1000));
        assert_eq!(c, 1.0 + 10.0, "L2 still holds the line");
        assert_eq!(h.amat(), h.cycles() / 4.0);
    }

    #[test]
    fn instruction_fetches_split_from_data() {
        let mut h = Hierarchy::paper(dm_l1(), 2.0, lat()).with_l1i();
        h.access(MemRecord::fetch(0x400000));
        h.access(MemRecord::fetch(0x400000));
        // The data cache never saw the fetches.
        assert_eq!(h.l1d().stats().accesses(), 0);
        // Without an I-cache they hit the data cache.
        let mut h2 = Hierarchy::paper(dm_l1(), 2.0, lat());
        h2.access(MemRecord::fetch(0x400000));
        assert_eq!(h2.l1d().stats().accesses(), 1);
    }

    #[test]
    fn dirty_writeback_lands_in_l2() {
        let mut h = Hierarchy::paper(dm_l1(), 2.0, lat());
        h.access(MemRecord::write(0x0));
        // Evict the dirty line with an L1 conflict.
        h.access(MemRecord::read(32 * 1024));
        // The L2 should have seen: read 0x0 (fill), read 32K (fill),
        // write 0x0 (write-back) = 3 accesses.
        assert_eq!(h.l2().stats().accesses(), 3);
        assert_eq!(h.l2().stats().writes, 1);
    }

    #[test]
    fn secondary_hits_use_secondary_cost() {
        use unicache_assoc::ColumnAssociativeCache;
        let l1 = Box::new(ColumnAssociativeCache::new(CacheGeometry::paper_l1()).unwrap());
        let mut h = Hierarchy::paper(l1, 2.0, lat());
        // Conflict pair: 0 and 32K map to set 0.
        h.access(MemRecord::read(0));
        h.access(MemRecord::read(32 * 1024));
        // Next access to 0 is a rehash (secondary) hit: 2 cycles.
        let c = h.access(MemRecord::read(0));
        assert_eq!(c, 2.0);
    }

    #[test]
    fn run_and_reset() {
        let mut h = Hierarchy::paper(dm_l1(), 2.0, lat());
        let trace: Vec<MemRecord> = (0..100u64).map(|i| MemRecord::read(i * 32)).collect();
        h.run(&trace);
        assert!(h.cycles() > 0.0);
        assert!(h.amat() > 1.0);
        h.reset_stats();
        assert_eq!(h.cycles(), 0.0);
        assert_eq!(h.amat(), 0.0);
        assert_eq!(h.l1d().stats().accesses(), 0);
    }
}

#[cfg(test)]
mod l1i_tests {
    use super::*;
    use unicache_core::CacheGeometry;
    use unicache_sim::CacheBuilder;
    use unicache_trace::synth;

    #[test]
    fn split_hierarchy_serves_mixed_instruction_and_data_streams() {
        let lat = LatencyModel {
            l1_hit: 1.0,
            l2_hit: 10.0,
            memory: 100.0,
            ..Default::default()
        };
        let l1d = Box::new(
            CacheBuilder::new(CacheGeometry::paper_l1())
                .build()
                .unwrap(),
        );
        let mut h = Hierarchy::paper(l1d, 2.0, lat).with_l1i();
        // Interleave an instruction stream (fits the 32 KB L1I) with a
        // data stream.
        let code = synth::instruction_stream(1, 20_000, 8, 2048); // 16 KB of code
        let data = synth::zipfian(2, 20_000, 0x2000_0000, 512, 32, 1.0);
        for (i, d) in code.records().iter().zip(data.records()) {
            h.access(*i);
            h.access(*d);
        }
        // Code fits: the I-side contributes near-zero misses after warmup,
        // so total AMAT is dominated by data behaviour and must stay small.
        assert!(h.amat() < 4.0, "amat {}", h.amat());
        assert_eq!(h.l1d().stats().accesses(), 20_000, "fetches kept off L1D");
        assert!(h.cycles() >= 40_000.0);
    }

    #[test]
    fn l1i_conflict_pressure_shows_up_in_cycles() {
        let lat = LatencyModel {
            l1_hit: 1.0,
            l2_hit: 10.0,
            memory: 100.0,
            ..Default::default()
        };
        let mk = || {
            Box::new(
                CacheBuilder::new(CacheGeometry::paper_l1())
                    .build()
                    .unwrap(),
            )
        };
        // Small code (fits) vs giant code (4x the I-cache).
        let small_code = synth::instruction_stream(3, 30_000, 8, 2048);
        let big_code = synth::instruction_stream(3, 30_000, 64, 2048);
        let mut h_small = Hierarchy::paper(mk(), 2.0, lat).with_l1i();
        let mut h_big = Hierarchy::paper(mk(), 2.0, lat).with_l1i();
        h_small.run(small_code.records());
        h_big.run(big_code.records());
        assert!(
            h_big.amat() > h_small.amat(),
            "big {} vs small {}",
            h_big.amat(),
            h_small.amat()
        );
    }
}
