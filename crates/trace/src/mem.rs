//! Instrumented containers: real data + recorded addresses.
//!
//! A [`TracedVec<T>`] behaves like a `Vec<T>` whose every `get`/`set` emits
//! a load/store record at the element's simulated virtual address. Workload
//! kernels therefore compute *correct results* (verifiable in tests) while
//! producing the address streams the cache simulators consume — the same
//! dual role the instrumented SimpleScalar run plays in the paper.

use crate::tracer::Tracer;
use unicache_core::Addr;

use crate::vspace::Region;

/// An instrumented, fixed-stride array living in the simulated space.
#[derive(Debug, Clone)]
pub struct TracedVec<T: Copy> {
    tracer: Tracer,
    base: Addr,
    stride: u64,
    data: Vec<T>,
}

impl<T: Copy> TracedVec<T> {
    /// Allocates an instrumented array in `region` initialized from `data`.
    /// Element stride is `size_of::<T>()` (minimum 1).
    pub fn new_in(tracer: &Tracer, region: Region, data: Vec<T>) -> Self {
        let stride = std::mem::size_of::<T>().max(1) as u64;
        let bytes = stride * data.len() as u64;
        let base = tracer.alloc(region, bytes.max(1), stride.next_power_of_two().min(16));
        TracedVec {
            tracer: tracer.clone(),
            base,
            stride,
            data,
        }
    }

    /// Heap allocation via the simulated `malloc`.
    pub fn malloc(tracer: &Tracer, data: Vec<T>) -> Self {
        let stride = std::mem::size_of::<T>().max(1) as u64;
        let bytes = stride * data.len() as u64;
        let base = tracer.malloc(bytes.max(1));
        TracedVec {
            tracer: tracer.clone(),
            base,
            stride,
            data,
        }
    }

    /// Allocates a zero-filled instrumented array.
    pub fn zeroed_in(tracer: &Tracer, region: Region, len: usize) -> Self
    where
        T: Default,
    {
        Self::new_in(tracer, region, vec![T::default(); len])
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated base address.
    #[inline]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Simulated address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> Addr {
        self.base + i as u64 * self.stride
    }

    /// Traced load of element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.tracer.load(self.addr_of(i));
        self.data[i]
    }

    /// Traced store to element `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.tracer.store(self.addr_of(i));
        self.data[i] = v;
    }

    /// Traced read-modify-write (one load + one store), e.g. `a[i] += x`.
    #[inline]
    pub fn update(&mut self, i: usize, f: impl FnOnce(T) -> T) {
        let v = self.get(i);
        self.set(i, f(v));
    }

    /// Traced swap of elements `i` and `j` (two loads + two stores).
    pub fn swap(&mut self, i: usize, j: usize) {
        let a = self.get(i);
        let b = self.get(j);
        self.set(i, b);
        self.set(j, a);
    }

    /// Untraced peek — for test assertions and kernel setup, *not* for the
    /// algorithm's own memory activity.
    #[inline]
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Untraced write — for setup only.
    #[inline]
    pub fn poke(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    /// Untraced view of the whole buffer (for verifying kernel results).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

/// An instrumented row-major 2-D matrix.
#[derive(Debug, Clone)]
pub struct TracedMat<T: Copy> {
    vec: TracedVec<T>,
    cols: usize,
}

impl<T: Copy> TracedMat<T> {
    /// Allocates a `rows × cols` matrix in `region`, initialized from
    /// `data` (row-major; `data.len()` must equal `rows * cols`).
    pub fn new_in(tracer: &Tracer, region: Region, rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape/data mismatch");
        TracedMat {
            vec: TracedVec::new_in(tracer, region, data),
            cols,
        }
    }

    /// Zero-filled matrix.
    pub fn zeroed_in(tracer: &Tracer, region: Region, rows: usize, cols: usize) -> Self
    where
        T: Default,
    {
        Self::new_in(tracer, region, rows, cols, vec![T::default(); rows * cols])
    }

    /// Columns per row.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.vec.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Traced load of `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        debug_assert!(c < self.cols);
        self.vec.get(r * self.cols + c)
    }

    /// Traced store to `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(c < self.cols);
        self.vec.set(r * self.cols + c, v);
    }

    /// Untraced peek.
    #[inline]
    pub fn peek(&self, r: usize, c: usize) -> T {
        self.vec.peek(r * self.cols + c)
    }

    /// Untraced poke (setup only).
    #[inline]
    pub fn poke(&mut self, r: usize, c: usize, v: T) {
        self.vec.poke(r * self.cols + c, v);
    }

    /// Simulated address of `(r, c)`.
    #[inline]
    pub fn addr_of(&self, r: usize, c: usize) -> Addr {
        self.vec.addr_of(r * self.cols + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicache_core::AccessKind;

    #[test]
    fn traced_vec_records_loads_and_stores() {
        let t = Tracer::new();
        let mut v = TracedVec::new_in(&t, Region::Heap, vec![10i32, 20, 30]);
        assert_eq!(v.get(1), 20);
        v.set(2, 99);
        assert_eq!(v.peek(2), 99);
        let tr = t.finish();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.records()[0].kind, AccessKind::Read);
        assert_eq!(tr.records()[0].addr, v.base() + 4);
        assert_eq!(tr.records()[1].kind, AccessKind::Write);
        assert_eq!(tr.records()[1].addr, v.base() + 8);
    }

    #[test]
    fn stride_matches_type_size() {
        let t = Tracer::new();
        let v8 = TracedVec::new_in(&t, Region::Heap, vec![0u8; 4]);
        let v64 = TracedVec::new_in(&t, Region::Heap, vec![0u64; 4]);
        assert_eq!(v8.addr_of(1) - v8.addr_of(0), 1);
        assert_eq!(v64.addr_of(1) - v64.addr_of(0), 8);
    }

    #[test]
    fn update_and_swap_trace_counts() {
        let t = Tracer::new();
        let mut v = TracedVec::new_in(&t, Region::Heap, vec![1i64, 2]);
        v.update(0, |x| x + 10); // 1 load + 1 store
        v.swap(0, 1); // 2 loads + 2 stores
        assert_eq!(v.peek(0), 2);
        assert_eq!(v.peek(1), 11);
        let tr = t.finish();
        assert_eq!(tr.len(), 6);
        assert_eq!(tr.read_count(), 3);
        assert_eq!(tr.write_count(), 3);
    }

    #[test]
    fn peek_poke_do_not_trace() {
        let t = Tracer::new();
        let mut v = TracedVec::zeroed_in(&t, Region::Global, 8);
        v.poke(3, 42u32);
        assert_eq!(v.peek(3), 42);
        assert_eq!(v.as_slice()[3], 42);
        assert!(t.is_empty());
    }

    #[test]
    fn matrix_addressing_is_row_major() {
        let t = Tracer::new();
        let mut m = TracedMat::zeroed_in(&t, Region::Heap, 3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        m.set(1, 2, 7.0f64);
        assert_eq!(m.peek(1, 2), 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        // Row stride = cols * size_of::<f64>()
        assert_eq!(m.addr_of(1, 0) - m.addr_of(0, 0), 32);
        assert_eq!(m.addr_of(0, 1) - m.addr_of(0, 0), 8);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn matrix_shape_mismatch_panics() {
        let t = Tracer::new();
        TracedMat::new_in(&t, Region::Heap, 2, 2, vec![1u8; 5]);
    }

    #[test]
    fn distinct_vecs_get_distinct_addresses() {
        let t = Tracer::new();
        let a = TracedVec::new_in(&t, Region::Heap, vec![0u32; 100]);
        let b = TracedVec::new_in(&t, Region::Heap, vec![0u32; 100]);
        let a_end = a.addr_of(99) + 4;
        assert!(
            b.base() >= a_end,
            "b {:#x} overlaps a end {:#x}",
            b.base(),
            a_end
        );
    }
}
