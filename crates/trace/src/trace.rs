//! The [`Trace`] container: an in-memory sequence of memory references.

use serde::{Deserialize, Serialize};
use unicache_core::{AccessKind, Addr, MemRecord, ThreadId};

/// Per-kind reference counts, computed in one traversal (see
/// [`Trace::access_mix`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessMix {
    /// Load references.
    pub reads: usize,
    /// Store references.
    pub writes: usize,
    /// Instruction fetches.
    pub fetches: usize,
}

/// An ordered memory-reference trace.
///
/// Thin, transparent wrapper over `Vec<MemRecord>` with the query helpers
/// the experiments need (unique block addresses for Givargis training,
/// read/write splits, per-thread views).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<MemRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            records: Vec::new(),
        }
    }

    /// Wraps an existing record vector.
    pub fn from_records(records: Vec<MemRecord>) -> Self {
        Trace { records }
    }

    /// Appends one record.
    #[inline]
    pub fn push(&mut self, rec: MemRecord) {
        self.records.push(rec);
    }

    /// Number of references.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace holds no references.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow the raw records (the hot path: models run over `&[MemRecord]`).
    #[inline]
    pub fn records(&self) -> &[MemRecord] {
        &self.records
    }

    /// Consumes the trace, yielding the raw record vector.
    pub fn into_records(self) -> Vec<MemRecord> {
        self.records
    }

    /// Iterator over records.
    pub fn iter(&self) -> std::slice::Iter<'_, MemRecord> {
        self.records.iter()
    }

    /// Read/write/fetch counts in a single traversal. Callers needing
    /// more than one of the counts should take the mix once instead of
    /// paying one pass per counter.
    pub fn access_mix(&self) -> AccessMix {
        let mut mix = AccessMix::default();
        for r in &self.records {
            match r.kind {
                AccessKind::Read => mix.reads += 1,
                AccessKind::Write => mix.writes += 1,
                AccessKind::InstFetch => mix.fetches += 1,
            }
        }
        mix
    }

    /// Number of store references.
    pub fn write_count(&self) -> usize {
        self.access_mix().writes
    }

    /// Number of load references.
    pub fn read_count(&self) -> usize {
        self.access_mix().reads
    }

    /// The set of unique byte addresses touched. Givargis' algorithm is
    /// defined over the *unique* addresses of a program (paper Section
    /// II.A).
    ///
    /// Sort-dedup rather than a hash set: the output must be sorted
    /// anyway, and sorting a dense `Vec<u64>` then deduping in place
    /// avoids the per-insert hashing and the scattered heap of a
    /// `HashSet` (multi-million-record traces make this a measurable
    /// part of Givargis training setup).
    pub fn unique_addrs(&self) -> Vec<Addr> {
        let mut v: Vec<Addr> = self.records.iter().map(|r| r.addr).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The set of unique *block* addresses for a given line size (same
    /// sort-dedup strategy as [`Trace::unique_addrs`]).
    pub fn unique_blocks(&self, line_bytes: u64) -> Vec<Addr> {
        debug_assert!(line_bytes.is_power_of_two());
        let shift = line_bytes.trailing_zeros();
        let mut v: Vec<Addr> = self.records.iter().map(|r| r.addr >> shift).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// A new trace containing only this thread's references.
    pub fn filter_tid(&self, tid: ThreadId) -> Trace {
        Trace {
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| r.tid == tid)
                .collect(),
        }
    }

    /// A new trace containing only data references (loads + stores).
    pub fn data_only(&self) -> Trace {
        Trace {
            records: self
                .records
                .iter()
                .copied()
                .filter(|r| r.kind.is_data())
                .collect(),
        }
    }

    /// A new trace truncated to at most `n` references.
    pub fn truncate_to(&self, n: usize) -> Trace {
        Trace {
            records: self.records.iter().copied().take(n).collect(),
        }
    }

    /// A new trace with every record re-attributed to `tid` (used when
    /// single-threaded workload traces are combined into SMT mixes).
    pub fn with_tid(&self, tid: ThreadId) -> Trace {
        Trace {
            records: self.records.iter().map(|r| r.with_tid(tid)).collect(),
        }
    }

    /// Appends all records of `other`.
    pub fn extend(&mut self, other: &Trace) {
        self.records.extend_from_slice(&other.records);
    }
}

impl FromIterator<MemRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = MemRecord>>(iter: I) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemRecord;
    type IntoIter = std::slice::Iter<'a, MemRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemRecord;
    type IntoIter = std::vec::IntoIter<MemRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(MemRecord::read(0x1000));
        t.push(MemRecord::write(0x1000));
        t.push(MemRecord::read(0x1020));
        t.push(MemRecord::fetch(0x400000));
        t.push(MemRecord::read(0x2000).with_tid(1));
        t
    }

    #[test]
    fn counting_and_views() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.read_count(), 3);
        assert_eq!(t.write_count(), 1);
        let mix = t.access_mix();
        assert_eq!(
            mix,
            AccessMix {
                reads: 3,
                writes: 1,
                fetches: 1
            }
        );
        assert_eq!(mix.reads + mix.writes + mix.fetches, t.len());
        assert_eq!(t.data_only().len(), 4);
        assert_eq!(t.filter_tid(1).len(), 1);
        assert_eq!(t.filter_tid(0).len(), 4);
        assert_eq!(t.truncate_to(2).len(), 2);
        assert_eq!(t.truncate_to(99).len(), 5);
    }

    #[test]
    fn unique_addresses_are_sorted_and_deduped() {
        let t = sample();
        assert_eq!(t.unique_addrs(), vec![0x1000, 0x1020, 0x2000, 0x400000]);
        // 32-byte blocks: 0x1000 and 0x1020 are distinct; 0x1000 repeated
        // collapses.
        assert_eq!(
            t.unique_blocks(32),
            vec![0x1000 >> 5, 0x1020 >> 5, 0x2000 >> 5, 0x400000 >> 5]
        );
    }

    #[test]
    fn with_tid_relabels_everything() {
        let t = sample().with_tid(7);
        assert!(t.iter().all(|r| r.tid == 7));
    }

    #[test]
    fn extend_and_from_iter() {
        let mut a = sample();
        let b = sample();
        a.extend(&b);
        assert_eq!(a.len(), 10);
        let c: Trace = b.iter().copied().collect();
        assert_eq!(c.len(), 5);
        let d: Vec<MemRecord> = c.clone().into_iter().collect();
        assert_eq!(d.len(), 5);
        assert_eq!(c.into_records().len(), 5);
    }

    #[test]
    fn empty_trace_queries() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert!(t.unique_addrs().is_empty());
        assert!(t.unique_blocks(64).is_empty());
        assert_eq!(t.data_only().len(), 0);
    }
}
