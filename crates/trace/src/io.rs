//! Compact binary and CSV (de)serialization of traces.
//!
//! Binary layout (little-endian), chosen so a 10-byte fixed record keeps
//! multi-million-reference traces small and `mmap`-friendly:
//!
//! ```text
//! magic  "UCTR"            4 bytes
//! version u16              2 bytes
//! count   u64              8 bytes
//! record: addr u64, kind u8 (0=R,1=W,2=I), tid u8     (count times)
//! ```

use crate::trace::Trace;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use unicache_core::{AccessKind, MemRecord};

const MAGIC: &[u8; 4] = b"UCTR";
const VERSION: u16 = 1;

/// Errors raised when decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer too short for the declared contents.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unknown access-kind byte.
    BadKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "trace buffer truncated"),
            DecodeError::BadMagic => write!(f, "bad trace magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown access kind byte {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn kind_to_byte(k: AccessKind) -> u8 {
    match k {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::InstFetch => 2,
    }
}

fn byte_to_kind(b: u8) -> Result<AccessKind, DecodeError> {
    match b {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        2 => Ok(AccessKind::InstFetch),
        other => Err(DecodeError::BadKind(other)),
    }
}

/// Serializes a trace to the compact binary format.
pub fn encode(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(14 + trace.len() * 10);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(trace.len() as u64);
    for r in trace {
        buf.put_u64_le(r.addr);
        buf.put_u8(kind_to_byte(r.kind));
        buf.put_u8(r.tid);
    }
    buf.freeze()
}

/// Decodes a trace from the compact binary format.
pub fn decode(mut buf: &[u8]) -> Result<Trace, DecodeError> {
    if buf.len() < 14 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = buf.get_u64_le() as usize;
    if buf.len() < count * 10 {
        return Err(DecodeError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let addr = buf.get_u64_le();
        let kind = byte_to_kind(buf.get_u8())?;
        let tid = buf.get_u8();
        records.push(MemRecord { addr, kind, tid });
    }
    Ok(Trace::from_records(records))
}

/// Writes a trace as CSV (`addr,kind,tid`, hex addresses) — for eyeballing
/// and external plotting.
pub fn to_csv(trace: &Trace) -> String {
    let mut s = String::with_capacity(trace.len() * 16 + 16);
    s.push_str("addr,kind,tid\n");
    for r in trace {
        let k = match r.kind {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
            AccessKind::InstFetch => 'I',
        };
        s.push_str(&format!("{:#x},{},{}\n", r.addr, k, r.tid));
    }
    s
}

/// Parses the CSV produced by [`to_csv`].
pub fn from_csv(csv: &str) -> Result<Trace, String> {
    let mut records = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 && line.starts_with("addr") {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let addr_s = parts
            .next()
            .ok_or_else(|| format!("line {lineno}: missing addr"))?;
        let kind_s = parts
            .next()
            .ok_or_else(|| format!("line {lineno}: missing kind"))?;
        let tid_s = parts
            .next()
            .ok_or_else(|| format!("line {lineno}: missing tid"))?;
        let addr = if let Some(hex) = addr_s.trim().strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            addr_s.trim().parse()
        }
        .map_err(|e| format!("line {lineno}: bad addr: {e}"))?;
        let kind = match kind_s.trim() {
            "R" => AccessKind::Read,
            "W" => AccessKind::Write,
            "I" => AccessKind::InstFetch,
            other => return Err(format!("line {lineno}: bad kind {other:?}")),
        };
        let tid = tid_s
            .trim()
            .parse()
            .map_err(|e| format!("line {lineno}: bad tid: {e}"))?;
        records.push(MemRecord { addr, kind, tid });
    }
    Ok(Trace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use proptest::prelude::*;

    #[test]
    fn binary_round_trip() {
        let t = synth::uniform_rw(3, 1000, 0x10_0000, 1 << 20, 0.25);
        let bytes = encode(&t);
        assert_eq!(bytes.len(), 14 + 1000 * 10);
        let back = decode(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_round_trip() {
        let t = Trace::new();
        let back = decode(&encode(&t)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(b"XXXX0000000000"), Err(DecodeError::BadMagic));
        let mut good = encode(&synth::uniform(1, 4, 0, 64)).to_vec();
        // Flip version.
        good[4] = 9;
        assert_eq!(decode(&good), Err(DecodeError::BadVersion(9)));
        // Truncate body.
        let good = encode(&synth::uniform(1, 4, 0, 64));
        assert_eq!(decode(&good[..20]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let mut buf = encode(&synth::uniform(1, 1, 0, 64)).to_vec();
        buf[14 + 8] = 7; // kind byte of record 0
        assert_eq!(decode(&buf), Err(DecodeError::BadKind(7)));
    }

    #[test]
    fn csv_round_trip() {
        let t = synth::uniform_rw(5, 100, 0x4000, 4096, 0.5);
        let csv = to_csv(&t);
        assert!(csv.starts_with("addr,kind,tid\n"));
        let back = from_csv(&csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_parses_decimal_addresses_too() {
        let t = from_csv("addr,kind,tid\n4096,R,0\n8192,W,1\n").unwrap();
        assert_eq!(t.records()[0].addr, 4096);
        assert_eq!(t.records()[1].tid, 1);
    }

    #[test]
    fn csv_error_reporting() {
        assert!(from_csv("addr,kind,tid\nzzz,R,0\n").is_err());
        assert!(from_csv("addr,kind,tid\n1,Q,0\n").is_err());
        assert!(from_csv("addr,kind,tid\n1,R,badtid\n").is_err());
        assert!(from_csv("addr,kind,tid\n1\n").is_err());
    }

    proptest! {
        #[test]
        fn binary_round_trip_arbitrary(
            recs in proptest::collection::vec(
                (proptest::num::u64::ANY, 0u8..3, proptest::num::u8::ANY), 0..200)
        ) {
            let t: Trace = recs.iter().map(|&(addr, k, tid)| {
                let kind = byte_to_kind(k).unwrap();
                MemRecord { addr, kind, tid }
            }).collect();
            prop_assert_eq!(decode(&encode(&t)).unwrap(), t);
        }
    }
}

/// Writes the classic Dinero III "din" format: one `<label> <hex-addr>`
/// pair per line with labels 0 = read, 1 = write, 2 = instruction fetch —
/// so traces can be cross-checked against dineroIV and other classic
/// cache simulators (thread ids are not representable and are dropped).
pub fn to_dinero(trace: &Trace) -> String {
    let mut s = String::with_capacity(trace.len() * 12);
    for r in trace {
        let label = match r.kind {
            AccessKind::Read => '0',
            AccessKind::Write => '1',
            AccessKind::InstFetch => '2',
        };
        s.push(label);
        s.push(' ');
        s.push_str(&format!("{:x}\n", r.addr));
    }
    s
}

/// Parses the Dinero III format produced by [`to_dinero`] (and by other
/// tools): whitespace-separated `<label> <hex-addr>` per line; blank lines
/// are skipped.
pub fn from_dinero(din: &str) -> Result<Trace, String> {
    let mut records = Vec::new();
    for (lineno, line) in din.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label = parts
            .next()
            .ok_or_else(|| format!("line {lineno}: missing label"))?;
        let addr_s = parts
            .next()
            .ok_or_else(|| format!("line {lineno}: missing address"))?;
        let kind = match label {
            "0" => AccessKind::Read,
            "1" => AccessKind::Write,
            "2" => AccessKind::InstFetch,
            other => return Err(format!("line {lineno}: unknown label {other:?}")),
        };
        let addr = u64::from_str_radix(addr_s.trim_start_matches("0x"), 16)
            .map_err(|e| format!("line {lineno}: bad address: {e}"))?;
        records.push(MemRecord { addr, kind, tid: 0 });
    }
    Ok(Trace::from_records(records))
}

#[cfg(test)]
mod dinero_tests {
    use super::*;
    use crate::synth;

    #[test]
    fn dinero_round_trip() {
        let t = synth::uniform_rw(4, 500, 0x1000, 1 << 16, 0.4);
        let din = to_dinero(&t);
        let back = from_dinero(&din).unwrap();
        assert_eq!(t.len(), back.len());
        for (a, b) in t.iter().zip(back.iter()) {
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn dinero_format_shape() {
        let t = Trace::from_records(vec![
            MemRecord::read(0xABC),
            MemRecord::write(0x10),
            MemRecord::fetch(0x400000),
        ]);
        let din = to_dinero(&t);
        assert_eq!(din, "0 abc\n1 10\n2 400000\n");
    }

    #[test]
    fn dinero_parses_foreign_variants() {
        // 0x prefixes and extra whitespace are tolerated.
        let t = from_dinero("0 0xff\n\n1   20\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].addr, 0xFF);
        assert!(from_dinero("9 10\n").is_err());
        assert!(from_dinero("0 zz\n").is_err());
        assert!(from_dinero("0\n").is_err());
    }
}
