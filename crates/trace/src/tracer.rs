//! The [`Tracer`]: shared recording handle used by instrumented kernels.
//!
//! A `Tracer` owns the growing record list and the simulated address space.
//! It is `Clone` (cheap `Rc` copy) so every [`crate::mem::TracedVec`] in a
//! kernel can append to the same trace without threading `&mut` through the
//! whole algorithm — workload code then reads almost like the original C.

use crate::trace::Trace;
use crate::vspace::{Region, VirtualSpace};
use std::cell::RefCell;
use std::rc::Rc;
use unicache_core::{Addr, MemRecord, ThreadId};

#[derive(Debug)]
struct Inner {
    records: Vec<MemRecord>,
    vspace: VirtualSpace,
    tid: ThreadId,
}

/// Shared handle for building one workload's trace.
///
/// Single-threaded by design (workload kernels are sequential programs, as
/// in MiBench); SMT mixes are produced later by interleaving finished
/// traces (`unicache-smt`).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh tracer with a pristine virtual space, recording as thread 0.
    pub fn new() -> Self {
        Tracer {
            inner: Rc::new(RefCell::new(Inner {
                records: Vec::new(),
                vspace: VirtualSpace::new(),
                tid: 0,
            })),
        }
    }

    /// Sets the thread id stamped on subsequent records.
    pub fn set_tid(&self, tid: ThreadId) {
        self.inner.borrow_mut().tid = tid;
    }

    /// Records a data load at `addr`.
    #[inline]
    pub fn load(&self, addr: Addr) {
        let mut i = self.inner.borrow_mut();
        let tid = i.tid;
        i.records.push(MemRecord::read(addr).with_tid(tid));
    }

    /// Records a data store at `addr`.
    #[inline]
    pub fn store(&self, addr: Addr) {
        let mut i = self.inner.borrow_mut();
        let tid = i.tid;
        i.records.push(MemRecord::write(addr).with_tid(tid));
    }

    /// Records an instruction fetch at `pc`.
    #[inline]
    pub fn ifetch(&self, pc: Addr) {
        let mut i = self.inner.borrow_mut();
        let tid = i.tid;
        i.records.push(MemRecord::fetch(pc).with_tid(tid));
    }

    /// Allocates from the simulated address space.
    pub fn alloc(&self, region: Region, bytes: u64, align: u64) -> Addr {
        self.inner.borrow_mut().vspace.alloc(region, bytes, align)
    }

    /// Heap allocation with malloc-like alignment and header gap.
    pub fn malloc(&self, bytes: u64) -> Addr {
        self.inner.borrow_mut().vspace.malloc(bytes)
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes tracing and returns the captured trace.
    ///
    /// Works even while other clones of the handle are alive (the records
    /// are drained, not moved out of the `Rc`), so kernels can keep their
    /// `TracedVec`s in scope.
    pub fn finish(&self) -> Trace {
        let mut i = self.inner.borrow_mut();
        Trace::from_records(std::mem::take(&mut i.records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicache_core::AccessKind;

    #[test]
    fn records_in_program_order() {
        let t = Tracer::new();
        t.load(0x10);
        t.store(0x20);
        t.ifetch(0x400000);
        let tr = t.finish();
        assert_eq!(tr.len(), 3);
        let r = tr.records();
        assert_eq!(r[0].addr, 0x10);
        assert_eq!(r[0].kind, AccessKind::Read);
        assert_eq!(r[1].kind, AccessKind::Write);
        assert_eq!(r[2].kind, AccessKind::InstFetch);
    }

    #[test]
    fn clones_share_the_same_trace() {
        let t = Tracer::new();
        let t2 = t.clone();
        t.load(1);
        t2.load(2);
        t.store(3);
        assert_eq!(t2.len(), 3);
        let tr = t2.finish();
        assert_eq!(tr.records()[1].addr, 2);
        // After finish, both handles see an empty buffer.
        assert!(t.is_empty());
    }

    #[test]
    fn tid_stamping() {
        let t = Tracer::new();
        t.load(1);
        t.set_tid(4);
        t.load(2);
        let tr = t.finish();
        assert_eq!(tr.records()[0].tid, 0);
        assert_eq!(tr.records()[1].tid, 4);
    }

    #[test]
    fn allocation_delegates_to_vspace() {
        let t = Tracer::new();
        let a = t.alloc(Region::Global, 64, 8);
        let b = t.malloc(100);
        assert!(a < b); // globals below heap
        assert_eq!(b % 16, 0);
    }
}
