//! Parameterized synthetic reference generators.
//!
//! These are not paper workloads — the paper's workloads are instrumented
//! kernels in `unicache-workloads` — but the test suites and ablation
//! benches need address streams with *known* statistical structure:
//! a uniform stream must produce near-zero kurtosis, a single-hotspot
//! stream must produce extreme kurtosis, a power-of-two stride must slam a
//! subset of sets, and so on.

use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unicache_core::{Addr, MemRecord};

/// Uniformly random reads over `[base, base + span)`.
pub fn uniform(seed: u64, n: usize, base: Addr, span: u64) -> Trace {
    assert!(span > 0, "span must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| MemRecord::read(base + rng.gen_range(0..span)))
        .collect()
}

/// A constant-stride sweep: `base, base+stride, base+2*stride, ...`,
/// wrapping after `footprint` bytes. Power-of-two strides larger than the
/// line size exercise only a fraction of a conventionally indexed cache —
/// the canonical conflict-miss generator.
pub fn strided(n: usize, base: Addr, stride: u64, footprint: u64) -> Trace {
    assert!(footprint > 0, "footprint must be positive");
    (0..n as u64)
        .map(|i| MemRecord::read(base + (i * stride) % footprint))
        .collect()
}

/// Zipfian-distributed reads over `items` line-sized objects: item `k`
/// (1-based rank) is chosen with probability ∝ `1 / k^s`. Models the
/// few-hot-many-cold pattern behind the paper's Figure 1.
pub fn zipfian(seed: u64, n: usize, base: Addr, items: usize, line: u64, s: f64) -> Trace {
    assert!(items > 0, "need at least one item");
    let mut rng = StdRng::seed_from_u64(seed);
    // Precompute the CDF once; sampling is a binary search.
    let mut cdf = Vec::with_capacity(items);
    let mut acc = 0.0f64;
    for k in 1..=items {
        acc += 1.0 / (k as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..total);
            let idx = cdf.partition_point(|&c| c < u).min(items - 1);
            MemRecord::read(base + idx as u64 * line)
        })
        .collect()
}

/// A two-population stream: `hot_frac` of references hit a small hot
/// region of `hot_bytes`, the rest spread uniformly over `cold_bytes`.
pub fn hotspot(
    seed: u64,
    n: usize,
    base: Addr,
    hot_bytes: u64,
    cold_bytes: u64,
    hot_frac: f64,
) -> Trace {
    assert!(hot_bytes > 0 && cold_bytes > 0);
    assert!((0.0..=1.0).contains(&hot_frac));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(hot_frac) {
                MemRecord::read(base + rng.gen_range(0..hot_bytes))
            } else {
                MemRecord::read(base + hot_bytes + rng.gen_range(0..cold_bytes))
            }
        })
        .collect()
}

/// A pointer-chase over a random Hamiltonian cycle of `nodes` records of
/// `node_bytes` each — dependent loads with no spatial locality, the
/// classic linked-list traversal pattern (mcf-like).
pub fn pointer_chase(seed: u64, n: usize, base: Addr, nodes: usize, node_bytes: u64) -> Trace {
    assert!(nodes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Sattolo's algorithm: a uniform random single cycle.
    let mut next: Vec<usize> = (0..nodes).collect();
    for i in (1..nodes).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    let mut cur = 0usize;
    (0..n)
        .map(|_| {
            let r = MemRecord::read(base + cur as u64 * node_bytes);
            cur = next[cur];
            r
        })
        .collect()
}

/// Mixed read/write uniform stream with the given write ratio — used to
/// exercise write-allocation and write-back paths.
pub fn uniform_rw(seed: u64, n: usize, base: Addr, span: u64, write_ratio: f64) -> Trace {
    assert!(span > 0);
    assert!((0.0..=1.0).contains(&write_ratio));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let addr = base + rng.gen_range(0..span);
            if rng.gen_bool(write_ratio) {
                MemRecord::write(addr)
            } else {
                MemRecord::read(addr)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform(7, 100, 0, 4096), uniform(7, 100, 0, 4096));
        assert_ne!(uniform(7, 100, 0, 4096), uniform(8, 100, 0, 4096));
        assert_eq!(
            zipfian(1, 50, 0, 64, 32, 1.0),
            zipfian(1, 50, 0, 64, 32, 1.0)
        );
        assert_eq!(
            pointer_chase(3, 50, 0, 16, 64),
            pointer_chase(3, 50, 0, 16, 64)
        );
    }

    #[test]
    fn uniform_stays_in_range() {
        let t = uniform(1, 1000, 0x1000, 256);
        assert_eq!(t.len(), 1000);
        for r in &t {
            assert!(r.addr >= 0x1000 && r.addr < 0x1100);
        }
    }

    #[test]
    fn stride_wraps_at_footprint() {
        let t = strided(10, 0, 64, 256);
        let addrs: Vec<Addr> = t.iter().map(|r| r.addr).collect();
        assert_eq!(addrs[..5], [0, 64, 128, 192, 0]);
    }

    #[test]
    fn zipf_concentrates_on_low_ranks() {
        let t = zipfian(42, 20_000, 0, 1000, 32, 1.2);
        let first_item = t.iter().filter(|r| r.addr == 0).count();
        // Rank-1 probability for s=1.2 over 1000 items is ≈ 0.27; the count
        // must dwarf the uniform expectation of 20.
        assert!(first_item > 2000, "rank-1 hits: {first_item}");
    }

    #[test]
    fn hotspot_ratio_approximate() {
        let t = hotspot(5, 50_000, 0, 64, 1 << 20, 0.9);
        let hot = t.iter().filter(|r| r.addr < 64).count();
        let frac = hot as f64 / t.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn pointer_chase_visits_every_node() {
        let nodes = 64;
        let t = pointer_chase(9, nodes, 0, nodes, 128);
        let distinct: HashSet<Addr> = t.iter().map(|r| r.addr).collect();
        // One full lap of a Hamiltonian cycle touches every node exactly
        // once.
        assert_eq!(distinct.len(), nodes);
    }

    #[test]
    fn rw_ratio_approximate() {
        let t = uniform_rw(11, 20_000, 0, 1 << 16, 0.3);
        let frac = t.write_count() as f64 / t.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    #[should_panic]
    fn zero_span_panics() {
        uniform(0, 1, 0, 0);
    }
}

/// A synthetic instruction-fetch stream: `functions` routines laid out in
/// the text segment, executed as mostly-sequential fetches with taken
/// branches (loop back-edges) and call/return transfers driven by an
/// explicit call stack — the access structure an L1I cache sees.
///
/// Knobs follow typical integer-code statistics: ~70% fall-through, ~20%
/// short backward branch (loops), ~10% call or return.
pub fn instruction_stream(seed: u64, n: usize, functions: usize, func_bytes: u64) -> Trace {
    assert!(functions > 0 && func_bytes >= 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let text_base: Addr = 0x0040_0000;
    let func_base = |f: usize| text_base + f as u64 * func_bytes;
    let mut stack: Vec<(usize, Addr)> = Vec::new(); // (function, return pc)
    let mut func = 0usize;
    let mut pc = func_base(0);
    (0..n)
        .map(|_| {
            let rec = MemRecord::fetch(pc);
            let roll: f64 = rng.gen();
            if roll < 0.70 {
                pc += 4;
            } else if roll < 0.90 {
                // Loop back-edge: jump back a short distance.
                let back = rng.gen_range(1..=16) * 4;
                pc = pc.saturating_sub(back).max(func_base(func));
            } else if roll < 0.97 && stack.len() < 64 {
                // Call a random function.
                stack.push((func, pc + 4));
                func = rng.gen_range(0..functions);
                pc = func_base(func);
            } else if let Some((f, ret)) = stack.pop() {
                func = f;
                pc = ret;
            } else {
                pc += 4;
            }
            // Keep the pc inside the function body.
            if pc >= func_base(func) + func_bytes {
                pc = func_base(func);
            }
            rec
        })
        .collect()
}

#[cfg(test)]
mod instruction_tests {
    use super::*;
    use unicache_core::AccessKind;

    #[test]
    fn stream_is_all_fetches_in_text() {
        let t = instruction_stream(1, 5000, 16, 1024);
        assert_eq!(t.len(), 5000);
        for r in &t {
            assert_eq!(r.kind, AccessKind::InstFetch);
            assert!(r.addr >= 0x40_0000);
            assert!(r.addr < 0x40_0000 + 16 * 1024);
            assert_eq!(r.addr % 4, 0, "instruction alignment");
        }
    }

    #[test]
    fn stream_is_mostly_sequential() {
        let t = instruction_stream(2, 20_000, 8, 2048);
        let seq = t
            .records()
            .windows(2)
            .filter(|w| w[1].addr == w[0].addr + 4)
            .count();
        let frac = seq as f64 / (t.len() - 1) as f64;
        assert!((0.5..0.9).contains(&frac), "sequential fraction {frac}");
    }

    #[test]
    fn deterministic_and_covers_functions() {
        assert_eq!(
            instruction_stream(3, 1000, 4, 512),
            instruction_stream(3, 1000, 4, 512)
        );
        let t = instruction_stream(4, 50_000, 8, 1024);
        let funcs: std::collections::HashSet<u64> =
            t.iter().map(|r| (r.addr - 0x40_0000) / 1024).collect();
        assert!(funcs.len() >= 6, "only {} functions visited", funcs.len());
    }
}
