//! # unicache-trace
//!
//! Memory-trace infrastructure for the unicache workspace.
//!
//! The paper obtains address traces by running MiBench binaries under
//! SimpleScalar. We have no Alpha toolchain, so this crate provides the
//! substitute substrate (documented in `DESIGN.md`):
//!
//! * [`vspace::VirtualSpace`] — a simulated process image with text, global,
//!   heap and stack regions at realistic virtual addresses, plus a bump
//!   allocator, so instrumented kernels touch addresses with the same
//!   large-region structure a compiled binary would;
//! * [`tracer::Tracer`] and [`mem::TracedVec`] — instrumented memory.
//!   Workload kernels (crate `unicache-workloads`) compute real results on
//!   real data while every load/store is appended to a [`trace::Trace`];
//! * [`synth`] — parameterized synthetic reference generators (uniform,
//!   strided, Zipfian, hotspot, pointer-chase) used by unit tests,
//!   property tests and microbenches;
//! * [`io`] — compact binary and CSV (de)serialization of traces.

pub mod io;
pub mod mem;
pub mod summary;
pub mod synth;
pub mod trace;
pub mod tracer;
pub mod vspace;

pub use mem::{TracedMat, TracedVec};
pub use summary::{summarize, StrideProfile, WorkloadSummary};
pub use trace::{AccessMix, Trace};
pub use tracer::Tracer;
pub use vspace::{Region, VirtualSpace};
