//! A simulated process virtual address space.
//!
//! MiBench programs compiled for Alpha and run under SimpleScalar touch
//! addresses spread over a process image: code low, globals above it, a
//! heap growing upward and a stack growing downward from high addresses.
//! The *relative placement* of these regions is what creates realistic
//! tag/index bit patterns, so our instrumented kernels allocate from this
//! simulated image instead of using host pointers (which would change from
//! run to run and machine to machine — traces must be deterministic).

use serde::{Deserialize, Serialize};
use unicache_core::Addr;

/// The classic four program regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Program text (instruction fetches).
    Text,
    /// Globals / static data.
    Global,
    /// Heap (grows upward).
    Heap,
    /// Stack (grows downward).
    Stack,
}

/// Base addresses follow a conventional 32-bit-ish layout (the paper's
/// Alpha binaries are 64-bit ISA with 32-bit-range user images; what
/// matters for cache indexing is the low ~28 bits).
const TEXT_BASE: Addr = 0x0040_0000;
const GLOBAL_BASE: Addr = 0x1000_0000;
const HEAP_BASE: Addr = 0x2000_0000;
const STACK_BASE: Addr = 0x7FFF_F000; // grows down from here

/// Bump allocator over the four regions of a simulated process image.
///
/// Allocation never frees (workload kernels are single-shot); `reset`
/// restores the pristine image for a fresh run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirtualSpace {
    text_cursor: Addr,
    global_cursor: Addr,
    heap_cursor: Addr,
    stack_cursor: Addr,
}

impl Default for VirtualSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualSpace {
    /// A pristine process image.
    pub fn new() -> Self {
        VirtualSpace {
            text_cursor: TEXT_BASE,
            global_cursor: GLOBAL_BASE,
            heap_cursor: HEAP_BASE,
            stack_cursor: STACK_BASE,
        }
    }

    /// Restores the pristine image.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Allocates `bytes` bytes aligned to `align` (a power of two) in
    /// `region`; returns the base address of the allocation.
    ///
    /// Stack allocations grow downward (the returned base is *below* the
    /// previous cursor), mirroring how locals are laid out in a frame.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two or `bytes == 0` allocations
    /// are permitted but aligned as requested.
    pub fn alloc(&mut self, region: Region, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mask = align - 1;
        match region {
            Region::Text => {
                let base = (self.text_cursor + mask) & !mask;
                self.text_cursor = base + bytes;
                base
            }
            Region::Global => {
                let base = (self.global_cursor + mask) & !mask;
                self.global_cursor = base + bytes;
                base
            }
            Region::Heap => {
                let base = (self.heap_cursor + mask) & !mask;
                self.heap_cursor = base + bytes;
                base
            }
            Region::Stack => {
                let top = self.stack_cursor - bytes;
                let base = top & !mask;
                self.stack_cursor = base;
                base
            }
        }
    }

    /// Heap allocation helper with natural 16-byte malloc-style alignment
    /// plus an 16-byte "header" gap between consecutive allocations, like a
    /// real allocator leaves.
    pub fn malloc(&mut self, bytes: u64) -> Addr {
        let base = self.alloc(Region::Heap, bytes + 16, 16);
        base + 16
    }

    /// Current top of the heap (next unaligned heap address).
    pub fn heap_top(&self) -> Addr {
        self.heap_cursor
    }

    /// Current bottom of the stack region (lowest allocated stack address).
    pub fn stack_bottom(&self) -> Addr {
        self.stack_cursor
    }

    /// Total bytes allocated in `region` so far.
    pub fn allocated(&self, region: Region) -> u64 {
        match region {
            Region::Text => self.text_cursor - TEXT_BASE,
            Region::Global => self.global_cursor - GLOBAL_BASE,
            Region::Heap => self.heap_cursor - HEAP_BASE,
            Region::Stack => STACK_BASE - self.stack_cursor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regions_do_not_overlap_initially() {
        let mut vs = VirtualSpace::new();
        let t = vs.alloc(Region::Text, 4096, 4);
        let g = vs.alloc(Region::Global, 4096, 8);
        let h = vs.alloc(Region::Heap, 4096, 16);
        let s = vs.alloc(Region::Stack, 4096, 16);
        assert!(t < g && g < h && h < s);
    }

    #[test]
    fn alignment_respected() {
        let mut vs = VirtualSpace::new();
        vs.alloc(Region::Heap, 3, 1); // misalign the cursor
        let a = vs.alloc(Region::Heap, 100, 64);
        assert_eq!(a % 64, 0);
        let b = vs.alloc(Region::Stack, 100, 32);
        assert_eq!(b % 32, 0);
    }

    #[test]
    fn heap_grows_up_stack_grows_down() {
        let mut vs = VirtualSpace::new();
        let h1 = vs.alloc(Region::Heap, 64, 8);
        let h2 = vs.alloc(Region::Heap, 64, 8);
        assert!(h2 >= h1 + 64);
        let s1 = vs.alloc(Region::Stack, 64, 8);
        let s2 = vs.alloc(Region::Stack, 64, 8);
        assert!(s2 + 64 <= s1);
    }

    #[test]
    fn malloc_leaves_header_gap() {
        let mut vs = VirtualSpace::new();
        let a = vs.malloc(40);
        let b = vs.malloc(40);
        assert!(b >= a + 40 + 16);
        assert_eq!(a % 16, 0);
        assert_eq!(b % 16, 0);
    }

    #[test]
    fn reset_restores_cursors() {
        let mut vs = VirtualSpace::new();
        let first = vs.alloc(Region::Heap, 128, 8);
        vs.alloc(Region::Stack, 128, 8);
        assert!(vs.allocated(Region::Heap) >= 128);
        vs.reset();
        assert_eq!(vs.allocated(Region::Heap), 0);
        assert_eq!(vs.allocated(Region::Stack), 0);
        assert_eq!(vs.alloc(Region::Heap, 128, 8), first);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_alignment_panics() {
        VirtualSpace::new().alloc(Region::Heap, 8, 3);
    }

    proptest! {
        #[test]
        fn allocations_never_overlap(
            sizes in proptest::collection::vec((1u64..10_000, 0u32..7), 1..100)
        ) {
            let mut vs = VirtualSpace::new();
            let mut heap_spans: Vec<(Addr, Addr)> = Vec::new();
            for (sz, align_log) in sizes {
                let a = vs.alloc(Region::Heap, sz, 1 << align_log);
                for &(lo, hi) in &heap_spans {
                    prop_assert!(a >= hi || a + sz <= lo,
                        "overlap: [{a:#x},{:#x}) vs [{lo:#x},{hi:#x})", a + sz);
                }
                heap_spans.push((a, a + sz));
            }
        }

        #[test]
        fn stack_allocations_never_overlap(
            sizes in proptest::collection::vec((1u64..10_000, 0u32..7), 1..100)
        ) {
            let mut vs = VirtualSpace::new();
            let mut spans: Vec<(Addr, Addr)> = Vec::new();
            for (sz, align_log) in sizes {
                let a = vs.alloc(Region::Stack, sz, 1 << align_log);
                for &(lo, hi) in &spans {
                    prop_assert!(a >= hi || a + sz <= lo);
                }
                spans.push((a, a + sz));
            }
        }
    }
}
