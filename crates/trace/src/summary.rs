//! One-pass workload summaries — the analytical model's input.
//!
//! [`WorkloadSummary`] condenses a [`Trace`] into the statistics the
//! closed-form predictors in `unicache-model` consume: the footprint
//! (sorted unique blocks), per-block reference counts (the empirical
//! popularity distribution of the independent-reference model), the
//! read/write/fetch mix, and a coarse stride profile. It is computed in
//! one traversal plus one sort, the same cost as
//! [`Trace::unique_blocks`] — which it strictly subsumes, so callers
//! that need both the footprint and the mix should take one summary
//! instead of paying one pass per statistic (the experiments layer
//! memoizes one per (workload, line size)).

use crate::trace::{AccessMix, Trace};
use std::sync::Arc;
use unicache_core::{AccessKind, BlockAddr};

/// Coarse classification of successive block-address deltas.
///
/// Buckets are over the *signed block delta* between consecutive
/// references (first reference contributes nothing): `0` (same block),
/// `+1` (next block — unit-stride streaming), `+2..=+8` (small forward
/// stride), `< 0` (backward), everything else (large forward jumps —
/// pointer chasing, hashing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideProfile {
    /// Consecutive references to the same block.
    pub same_block: usize,
    /// Block delta exactly +1.
    pub next_block: usize,
    /// Block delta in +2..=+8.
    pub small_forward: usize,
    /// Negative block delta.
    pub backward: usize,
    /// Forward delta larger than 8 blocks.
    pub large: usize,
}

impl StrideProfile {
    /// Total classified transitions (`trace.len() - 1` for non-empty
    /// traces, 0 otherwise).
    pub fn transitions(&self) -> usize {
        self.same_block + self.next_block + self.small_forward + self.backward + self.large
    }

    /// Fraction of transitions that are sequential (same or next block);
    /// 0 for traces with fewer than two references.
    pub fn sequential_fraction(&self) -> f64 {
        let t = self.transitions();
        if t == 0 {
            return 0.0;
        }
        (self.same_block + self.next_block) as f64 / t as f64
    }
}

/// One-pass summary of a workload trace at a fixed line size.
///
/// `blocks` and `counts` are parallel: `counts[i]` is the number of
/// references that fell in block `blocks[i]`, and `blocks` is sorted
/// ascending with no duplicates (so it is exactly
/// [`Trace::unique_blocks`], shareable with Givargis training). The
/// counts normalized by [`WorkloadSummary::total_refs`] are the
/// empirical popularity vector of the independent-reference model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Line size the blocks were formed at (power of two).
    pub line_bytes: u64,
    /// Total references in the trace.
    pub total_refs: usize,
    /// Read/write/fetch split.
    pub mix: AccessMix,
    /// Sorted unique block addresses (the footprint). Shared so the
    /// training paths that need the raw footprint can hold it without
    /// copying.
    pub blocks: Arc<Vec<BlockAddr>>,
    /// References per unique block, parallel to `blocks`.
    pub counts: Vec<u64>,
    /// Coarse spatial-locality profile.
    pub stride: StrideProfile,
}

impl WorkloadSummary {
    /// Number of unique blocks touched.
    pub fn footprint_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Footprint in bytes (unique blocks × line size).
    pub fn footprint_bytes(&self) -> u64 {
        self.blocks.len() as u64 * self.line_bytes
    }

    /// Fraction of references that are stores; 0 for empty traces.
    pub fn write_fraction(&self) -> f64 {
        if self.total_refs == 0 {
            return 0.0;
        }
        self.mix.writes as f64 / self.total_refs as f64
    }
}

/// Computes the summary for a trace at `line_bytes` (one traversal plus
/// one sort of the block vector).
///
/// # Panics
/// If `line_bytes` is not a power of two.
pub fn summarize(trace: &Trace, line_bytes: u64) -> WorkloadSummary {
    assert!(
        line_bytes.is_power_of_two(),
        "summarize: line size {line_bytes} is not a power of two"
    );
    let shift = line_bytes.trailing_zeros();
    let mut mix = AccessMix::default();
    let mut stride = StrideProfile::default();
    let mut all_blocks: Vec<BlockAddr> = Vec::with_capacity(trace.len());
    let mut prev: Option<BlockAddr> = None;
    for r in trace.records() {
        match r.kind {
            AccessKind::Read => mix.reads += 1,
            AccessKind::Write => mix.writes += 1,
            AccessKind::InstFetch => mix.fetches += 1,
        }
        let block = r.addr >> shift;
        if let Some(p) = prev {
            if block == p {
                stride.same_block += 1;
            } else if block == p.wrapping_add(1) {
                stride.next_block += 1;
            } else if block > p && block - p <= 8 {
                stride.small_forward += 1;
            } else if block < p {
                stride.backward += 1;
            } else {
                stride.large += 1;
            }
        }
        prev = Some(block);
        all_blocks.push(block);
    }
    // Sort-dedup with run lengths: same strategy (and therefore the same
    // output footprint) as Trace::unique_blocks, plus per-block counts.
    all_blocks.sort_unstable();
    let mut blocks: Vec<BlockAddr> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    for &b in &all_blocks {
        match blocks.last() {
            Some(&last) if last == b => {
                // Run continues; the matching count slot always exists.
                if let Some(c) = counts.last_mut() {
                    *c += 1;
                }
            }
            _ => {
                blocks.push(b);
                counts.push(1);
            }
        }
    }
    WorkloadSummary {
        line_bytes,
        total_refs: trace.len(),
        mix,
        blocks: Arc::new(blocks),
        counts,
        stride,
    }
}

impl Trace {
    /// One-pass summary at `line_bytes` — see [`summarize`].
    pub fn summarize(&self, line_bytes: u64) -> WorkloadSummary {
        summarize(self, line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicache_core::MemRecord;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(MemRecord::read(0x1000)); // block 0x80
        t.push(MemRecord::write(0x1004)); // same block
        t.push(MemRecord::read(0x1020)); // next block
        t.push(MemRecord::read(0x10a0)); // +4 blocks
        t.push(MemRecord::fetch(0x400000)); // large forward
        t.push(MemRecord::read(0x1000)); // backward
        t
    }

    #[test]
    fn summary_matches_piecewise_queries() {
        let t = sample();
        let s = t.summarize(32);
        assert_eq!(s.total_refs, t.len());
        assert_eq!(s.mix, t.access_mix());
        assert_eq!(*s.blocks, t.unique_blocks(32));
        assert_eq!(s.counts.iter().sum::<u64>() as usize, t.len());
        assert_eq!(s.footprint_bytes(), s.blocks.len() as u64 * 32);
    }

    #[test]
    fn per_block_counts_follow_the_sorted_footprint() {
        let t = sample();
        let s = t.summarize(32);
        // Block 0x80 (addresses 0x1000/0x1004 twice + return) has 3 refs.
        let i = s.blocks.iter().position(|&b| b == 0x1000 >> 5);
        let i = i.expect("block 0x80 in footprint");
        assert_eq!(s.counts[i], 3);
        assert_eq!(s.blocks.len(), s.counts.len());
        assert!(s.blocks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stride_profile_buckets_each_transition_once() {
        let s = sample().summarize(32);
        assert_eq!(
            s.stride,
            StrideProfile {
                same_block: 1,
                next_block: 1,
                small_forward: 1,
                backward: 1,
                large: 1,
            }
        );
        assert_eq!(s.stride.transitions(), sample().len() - 1);
        let f = s.stride.sequential_fraction();
        assert!((f - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summary() {
        let s = Trace::new().summarize(64);
        assert_eq!(s.total_refs, 0);
        assert!(s.blocks.is_empty());
        assert!(s.counts.is_empty());
        assert_eq!(s.stride.transitions(), 0);
        assert_eq!(s.write_fraction(), 0.0);
        assert_eq!(s.stride.sequential_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        let _ = Trace::new().summarize(48);
    }
}
