//! A factory enumeration of the paper's indexing schemes, used by the
//! experiment runners (Fig. 4, 8, 9, 10) to sweep all schemes uniformly.

use crate::givargis::{GivargisIndex, GivargisXorIndex};
use crate::modulo::ModuloIndex;
use crate::oddmul::OddMultiplierIndex;
use crate::prime::PrimeModuloIndex;
use crate::xor::XorIndex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use unicache_core::{BlockAddr, CacheGeometry, ConfigError, IndexFunction, Result};

/// Default candidate-bit ceiling for trace-trained schemes: 28 block-address
/// bits cover the whole simulated process image.
pub const DEFAULT_TRAIN_BITS: u32 = 28;

/// One of the paper's Section II indexing schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexScheme {
    /// Conventional modulo-2^m (the baseline).
    Conventional,
    /// Exclusive-OR hashing (II.D).
    Xor,
    /// Odd-multiplier displacement with this multiplier (II.C).
    OddMultiplier(u64),
    /// Prime-modulo (II.B).
    PrimeModulo,
    /// Givargis bit selection (II.A) — needs a training trace.
    Givargis,
    /// Givargis-XOR hybrid (II.E) — needs a training trace.
    GivargisXor,
}

impl IndexScheme {
    /// The five non-baseline schemes in the order of the paper's Figure 4
    /// legend: XOR, Odd-multiplier, Prime-modulo, Givargis, Givargis-XOR.
    pub fn figure4_set() -> Vec<IndexScheme> {
        vec![
            IndexScheme::Xor,
            IndexScheme::OddMultiplier(21),
            IndexScheme::PrimeModulo,
            IndexScheme::Givargis,
            IndexScheme::GivargisXor,
        ]
    }

    /// Every registered scheme, baseline included — the enumeration `uca
    /// check` verifies. Covers each recommended odd multiplier, not just
    /// the paper-default 21, so the invariant proof extends to the whole
    /// ablation space the runners can sweep.
    pub fn all() -> Vec<IndexScheme> {
        let mut schemes = vec![IndexScheme::Conventional];
        for p in crate::oddmul::RECOMMENDED_MULTIPLIERS {
            schemes.push(IndexScheme::OddMultiplier(p));
        }
        schemes.extend([
            IndexScheme::Xor,
            IndexScheme::PrimeModulo,
            IndexScheme::Givargis,
            IndexScheme::GivargisXor,
        ]);
        schemes
    }

    /// Short label used in result tables (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            IndexScheme::Conventional => "conventional".into(),
            IndexScheme::Xor => "XOR".into(),
            IndexScheme::OddMultiplier(p) => format!("Odd_Multiplier({p})"),
            IndexScheme::PrimeModulo => "Prime_Modulo".into(),
            IndexScheme::Givargis => "Givargis".into(),
            IndexScheme::GivargisXor => "Givargis_Xor".into(),
        }
    }

    /// True if building the scheme requires a profiling trace.
    pub fn needs_training(&self) -> bool {
        matches!(self, IndexScheme::Givargis | IndexScheme::GivargisXor)
    }

    /// Builds the scheme for a cache of the given geometry.
    ///
    /// `training` must be `Some(unique block addresses)` for the Givargis
    /// variants and may be `None` otherwise.
    pub fn build(
        &self,
        geom: CacheGeometry,
        training: Option<&[BlockAddr]>,
    ) -> Result<Arc<dyn IndexFunction>> {
        let sets = geom.num_sets();
        match self {
            IndexScheme::Conventional => Ok(Arc::new(ModuloIndex::new(sets)?)),
            IndexScheme::Xor => Ok(Arc::new(XorIndex::new(sets)?)),
            IndexScheme::OddMultiplier(p) => Ok(Arc::new(OddMultiplierIndex::new(sets, *p)?)),
            IndexScheme::PrimeModulo => Ok(Arc::new(PrimeModuloIndex::new(sets)?)),
            IndexScheme::Givargis => {
                let blocks = training.ok_or_else(|| ConfigError::InvalidParameter {
                    what: "Givargis scheme requires a training trace".into(),
                })?;
                Ok(Arc::new(GivargisIndex::train(
                    blocks,
                    geom,
                    DEFAULT_TRAIN_BITS,
                )?))
            }
            IndexScheme::GivargisXor => {
                let blocks = training.ok_or_else(|| ConfigError::InvalidParameter {
                    what: "Givargis-XOR scheme requires a training trace".into(),
                })?;
                Ok(Arc::new(GivargisXorIndex::train(
                    blocks,
                    geom,
                    DEFAULT_TRAIN_BITS,
                )?))
            }
        }
    }

    /// Builds the scheme and maps a whole block slice to set indices in one
    /// call — the index-vector entry point the fused kernel's chunk loop is
    /// built on. Semantically identical to calling [`IndexFunction::index_block`]
    /// per element, but routed through [`IndexFunction::index_many`] so the
    /// scheme's monomorphized batch body runs (one virtual dispatch per slice
    /// instead of one per block).
    pub fn compute_many(
        &self,
        geom: CacheGeometry,
        training: Option<&[BlockAddr]>,
        blocks: &[BlockAddr],
    ) -> Result<Vec<usize>> {
        let f = self.build(geom, training)?;
        let mut out = vec![0usize; blocks.len()];
        f.index_many(blocks, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_order_matches_paper_legend() {
        let set = IndexScheme::figure4_set();
        assert_eq!(set.len(), 5);
        assert_eq!(set[0].label(), "XOR");
        assert_eq!(set[1].label(), "Odd_Multiplier(21)");
        assert_eq!(set[2].label(), "Prime_Modulo");
        assert_eq!(set[3].label(), "Givargis");
        assert_eq!(set[4].label(), "Givargis_Xor");
    }

    #[test]
    fn training_requirements() {
        assert!(!IndexScheme::Conventional.needs_training());
        assert!(!IndexScheme::Xor.needs_training());
        assert!(!IndexScheme::OddMultiplier(9).needs_training());
        assert!(!IndexScheme::PrimeModulo.needs_training());
        assert!(IndexScheme::Givargis.needs_training());
        assert!(IndexScheme::GivargisXor.needs_training());
    }

    #[test]
    fn build_all_schemes() {
        let geom = CacheGeometry::paper_l1();
        let blocks: Vec<u64> = (0..4096u64).map(|i| i * 97 % 65536).collect();
        for scheme in IndexScheme::figure4_set() {
            let f = scheme.build(geom, Some(&blocks)).unwrap();
            assert_eq!(f.num_sets(), 1024);
            for &b in blocks.iter().take(200) {
                assert!(f.index_block(b) < 1024);
            }
        }
        let base = IndexScheme::Conventional.build(geom, None).unwrap();
        assert_eq!(base.name(), "conventional");
    }

    #[test]
    fn compute_many_matches_per_block_indexing() {
        let geom = CacheGeometry::paper_l1();
        let training: Vec<u64> = (0..4096u64).map(|i| i * 97 % 65536).collect();
        let blocks: Vec<u64> = (0..2000u64)
            .map(|i| i.wrapping_mul(2654435761) >> 8)
            .collect();
        for scheme in IndexScheme::all() {
            let f = scheme.build(geom, Some(&training)).unwrap();
            let many = scheme.compute_many(geom, Some(&training), &blocks).unwrap();
            assert_eq!(many.len(), blocks.len());
            for (i, &b) in blocks.iter().enumerate() {
                assert_eq!(many[i], f.index_block(b), "{} block {b}", scheme.label());
            }
        }
    }

    #[test]
    fn givargis_without_training_fails() {
        let geom = CacheGeometry::paper_l1();
        assert!(IndexScheme::Givargis.build(geom, None).is_err());
        assert!(IndexScheme::GivargisXor.build(geom, None).is_err());
    }
}
