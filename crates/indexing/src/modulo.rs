//! Conventional modulo-2^m indexing — the paper's Figure 2 baseline.

use unicache_core::{
    is_pow2, BlockAddr, ConfigError, IndexFunction, Result, SimdLanes, SIMD_LANES,
};

/// The traditional index: the low `m` bits of the block address.
///
/// Every percentage in the paper's Figs. 4 and 6 is a reduction *relative
/// to this function* on a direct-mapped cache.
#[derive(Debug, Clone)]
pub struct ModuloIndex {
    sets: usize,
    mask: u64,
}

impl ModuloIndex {
    /// A modulo index over `sets` sets (must be a power of two).
    pub fn new(sets: usize) -> Result<Self> {
        if !is_pow2(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "modulo index sets",
                value: sets as u64,
            });
        }
        Ok(ModuloIndex {
            sets,
            mask: sets as u64 - 1,
        })
    }
}

impl IndexFunction for ModuloIndex {
    #[inline]
    fn index_block(&self, block: BlockAddr) -> usize {
        (block & self.mask) as usize
    }

    fn num_sets(&self) -> usize {
        self.sets
    }

    fn name(&self) -> &str {
        "conventional"
    }

    fn index_many(&self, blocks: &[BlockAddr], out: &mut [usize]) {
        let mask = self.mask;
        SimdLanes::map(
            blocks,
            out,
            |b8, o8| {
                for l in 0..SIMD_LANES {
                    o8[l] = (b8[l] & mask) as usize;
                }
            },
            |b| self.index_block(b),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn low_bits_are_the_index() {
        let f = ModuloIndex::new(1024).unwrap();
        assert_eq!(f.index_block(0), 0);
        assert_eq!(f.index_block(1023), 1023);
        assert_eq!(f.index_block(1024), 0);
        assert_eq!(f.index_block(0xABCDE), 0xABCDE & 1023);
        assert_eq!(f.num_sets(), 1024);
        assert_eq!(f.name(), "conventional");
    }

    #[test]
    fn single_set_cache() {
        let f = ModuloIndex::new(1).unwrap();
        assert_eq!(f.index_block(0xFFFF_FFFF), 0);
    }

    #[test]
    fn rejects_non_pow2() {
        assert!(ModuloIndex::new(0).is_err());
        assert!(ModuloIndex::new(1000).is_err());
    }

    proptest! {
        #[test]
        fn always_in_range(block in proptest::num::u64::ANY, log_sets in 0u32..16) {
            let sets = 1usize << log_sets;
            let f = ModuloIndex::new(sets).unwrap();
            prop_assert!(f.index_block(block) < sets);
        }

        #[test]
        fn consecutive_blocks_map_to_consecutive_sets(block in 0u64..u64::MAX - 1) {
            let f = ModuloIndex::new(1024).unwrap();
            let a = f.index_block(block);
            let b = f.index_block(block + 1);
            prop_assert_eq!((a + 1) % 1024, b);
        }
    }
}
