//! Odd-multiplier displacement (paper Section II.C, Eq. 4).
//!
//! `index = (p * T_i + I_i) mod s` — a multiple of the tag displaces the
//! conventional index. Based on Ghose & Kamble's hashing and related to
//! Raghavan & Hayes' RANDOM-H functions. The multiplier must be odd so the
//! displacement `p * T mod s` is a bijection of the tag modulo the
//! power-of-two set count. Kharbutli et al. recommend p ∈ {9, 21, 31, 61}.

use unicache_core::{
    is_pow2, log2, BlockAddr, ConfigError, IndexFunction, Result, SimdLanes, SIMD_LANES,
};

/// Multipliers recommended by the original authors (paper Section II.C).
pub const RECOMMENDED_MULTIPLIERS: [u64; 4] = [9, 21, 31, 61];

/// Odd-multiplier displacement hashing.
#[derive(Debug, Clone)]
pub struct OddMultiplierIndex {
    sets: usize,
    index_bits: u32,
    mask: u64,
    multiplier: u64,
    name: String,
}

impl OddMultiplierIndex {
    /// Displacement hashing with the given odd `multiplier`.
    pub fn new(sets: usize, multiplier: u64) -> Result<Self> {
        if !is_pow2(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "odd-multiplier index sets",
                value: sets as u64,
            });
        }
        if multiplier.is_multiple_of(2) {
            return Err(ConfigError::InvalidParameter {
                what: format!("odd-multiplier requires an odd multiplier, got {multiplier}"),
            });
        }
        Ok(OddMultiplierIndex {
            sets,
            index_bits: log2(sets as u64),
            mask: sets as u64 - 1,
            multiplier,
            name: format!("odd_multiplier({multiplier})"),
        })
    }

    /// The default multiplier used in the paper-wide comparisons (21).
    pub fn paper_default(sets: usize) -> Result<Self> {
        Self::new(sets, 21)
    }

    /// The configured multiplier.
    pub fn multiplier(&self) -> u64 {
        self.multiplier
    }

    /// Number of index bits (`m` = log2 of the set count).
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }
}

impl IndexFunction for OddMultiplierIndex {
    #[inline]
    fn index_block(&self, block: BlockAddr) -> usize {
        let tag = block >> self.index_bits;
        let index = block & self.mask;
        ((self.multiplier.wrapping_mul(tag).wrapping_add(index)) & self.mask) as usize
    }

    fn num_sets(&self) -> usize {
        self.sets
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn index_many(&self, blocks: &[BlockAddr], out: &mut [usize]) {
        let m = self.multiplier;
        let bits = self.index_bits;
        let mask = self.mask;
        // (p*T + (b & mask)) & mask == (p*T + b) & mask — the dropped
        // high bits of b are multiples of mask+1, invisible mod 2^m.
        SimdLanes::map(
            blocks,
            out,
            |b8, o8| {
                for l in 0..SIMD_LANES {
                    o8[l] = (m.wrapping_mul(b8[l] >> bits).wrapping_add(b8[l]) & mask) as usize;
                }
            },
            |b| self.index_block(b),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn formula_matches_equation_4() {
        let f = OddMultiplierIndex::new(1024, 9).unwrap();
        let tag = 0x3Fu64;
        let index = 0x155u64;
        let block = (tag << 10) | index;
        assert_eq!(f.index_block(block), ((9 * tag + index) % 1024) as usize);
    }

    #[test]
    fn zero_tag_is_identity() {
        let f = OddMultiplierIndex::new(512, 21).unwrap();
        for b in [0u64, 100, 511] {
            assert_eq!(f.index_block(b), b as usize);
        }
    }

    #[test]
    fn rejects_even_multiplier_and_bad_sets() {
        assert!(OddMultiplierIndex::new(1024, 8).is_err());
        assert!(OddMultiplierIndex::new(1000, 9).is_err());
        assert!(OddMultiplierIndex::new(1024, 1).is_ok()); // odd, if silly
    }

    #[test]
    fn recommended_multipliers_are_odd() {
        for m in RECOMMENDED_MULTIPLIERS {
            assert_eq!(m % 2, 1);
            assert!(OddMultiplierIndex::new(1024, m).is_ok());
        }
    }

    #[test]
    fn name_carries_multiplier() {
        let f = OddMultiplierIndex::new(64, 61).unwrap();
        assert_eq!(f.name(), "odd_multiplier(61)");
        assert_eq!(f.multiplier(), 61);
    }

    #[test]
    fn different_multipliers_hash_differently() {
        let a = OddMultiplierIndex::new(1024, 9).unwrap();
        let b = OddMultiplierIndex::new(1024, 21).unwrap();
        let block = (7 << 10) | 3;
        assert_ne!(a.index_block(block), b.index_block(block));
    }

    proptest! {
        #[test]
        fn always_in_range(block in proptest::num::u64::ANY, mult_half in 0u64..1000) {
            let f = OddMultiplierIndex::new(1024, 2 * mult_half + 1).unwrap();
            prop_assert!(f.index_block(block) < 1024);
        }

        #[test]
        fn displacement_is_bijective_over_tags(log_sets in 1u32..10) {
            // For fixed index bits, tag -> (p * tag) mod 2^m cycles through
            // residues without collapsing (p odd => invertible mod 2^m):
            // blocks sharing an index but with tags 0..sets map to all
            // distinct sets.
            let sets = 1usize << log_sets;
            let f = OddMultiplierIndex::new(sets, 21).unwrap();
            let mut seen = vec![false; sets];
            for tag in 0..sets as u64 {
                let block = tag << log_sets; // index bits zero
                let s = f.index_block(block);
                prop_assert!(!seen[s]);
                seen[s] = true;
            }
        }
    }
}
