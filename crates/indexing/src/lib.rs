//! # unicache-indexing
//!
//! Cache set-index functions — the paper's Section II, "Optimal Cache
//! Indexing Schemes".
//!
//! | Paper §  | Scheme | Type |
//! |----------|--------|------|
//! | Fig. 2   | conventional modulo-2^m | [`modulo::ModuloIndex`] |
//! | II.A     | Givargis trace-trained bit selection | [`givargis::GivargisIndex`] |
//! | II.B     | prime modulo | [`prime::PrimeModuloIndex`] |
//! | II.C     | odd-multiplier displacement | [`oddmul::OddMultiplierIndex`] |
//! | II.D     | exclusive-OR hashing | [`xor::XorIndex`] |
//! | II.E     | Givargis-XOR hybrid (the paper's own proposal) | [`givargis::GivargisXorIndex`] |
//! | II.F     | Patel optimal index search (Eq. 6/7) | [`patel::PatelSearch`] |
//!
//! All functions map *block addresses* to sets and implement
//! [`unicache_core::IndexFunction`]; they can be attached to any cache in
//! `unicache-sim`/`unicache-assoc`, including as the primary index of a
//! column-associative cache (the paper's Fig. 8 hybrid study).

pub mod bitselect;
pub mod givargis;
pub mod modulo;
pub mod oddmul;
pub mod patel;
pub mod prime;
pub mod primes;
pub mod registry;
pub mod xor;

pub use bitselect::BitSelectIndex;
pub use givargis::{GivargisIndex, GivargisTrainer, GivargisXorIndex};
pub use modulo::ModuloIndex;
pub use oddmul::{OddMultiplierIndex, RECOMMENDED_MULTIPLIERS};
pub use patel::PatelSearch;
pub use prime::PrimeModuloIndex;
pub use registry::IndexScheme;
pub use xor::XorIndex;
