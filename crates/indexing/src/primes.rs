//! Small prime-number utilities for prime-modulo indexing.

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the known minimal witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
/// 31, 37} which is sufficient for every 64-bit integer.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^r with d odd
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue 'witness;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// `(a * b) mod m` without overflow.
#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `(base ^ exp) mod m` by square-and-multiply.
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// The largest prime `<= n`, or `None` if `n < 2`.
pub fn largest_prime_leq(n: u64) -> Option<u64> {
    if n < 2 {
        return None;
    }
    let mut k = n;
    loop {
        if is_prime(k) {
            return Some(k);
        }
        k -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_primes() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 1009, 1013, 1019, 1021];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 1001, 1023, 1024];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn large_known_values() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1, Mersenne
        assert!(!is_prime(2_147_483_649));
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
                                                       // Carmichael numbers must not fool the test.
        for carmichael in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(!is_prime(carmichael), "{carmichael}");
        }
    }

    #[test]
    fn largest_prime_below_paper_set_counts() {
        // The values prime-modulo indexing actually uses for common caches.
        assert_eq!(largest_prime_leq(1024), Some(1021));
        assert_eq!(largest_prime_leq(512), Some(509));
        assert_eq!(largest_prime_leq(256), Some(251));
        assert_eq!(largest_prime_leq(2048), Some(2039));
        assert_eq!(largest_prime_leq(2), Some(2));
        assert_eq!(largest_prime_leq(1), None);
        assert_eq!(largest_prime_leq(0), None);
    }

    proptest! {
        #[test]
        fn largest_prime_is_prime_and_maximal(n in 2u64..100_000) {
            let p = largest_prime_leq(n).unwrap();
            prop_assert!(p <= n);
            prop_assert!(is_prime(p));
            for k in p + 1..=n {
                prop_assert!(!is_prime(k));
            }
        }

        #[test]
        fn miller_rabin_agrees_with_trial_division(n in 2u64..50_000) {
            let trial = (2..).take_while(|d| d * d <= n).all(|d| n % d != 0);
            prop_assert_eq!(is_prime(n), trial);
        }
    }
}
