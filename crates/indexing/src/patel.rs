//! Patel's application-specific optimal index search (paper Section II.F).
//!
//! Patel et al. exhaustively search bit combinations for the one whose
//! direct-mapped mapping yields the fewest conflict misses over a trace
//! (Eqs. 6–7 express this cost as a sum of pairwise conflict patterns; for
//! a direct-mapped cache it equals the miss count of replaying the trace,
//! which is how we evaluate it — exactly, in one linear pass per
//! candidate combination).
//!
//! The paper *describes* the scheme but excludes it from evaluation
//! "because of the intractability of the computations". We implement it
//! with an explicit combination budget: below the budget the search is
//! exhaustive (provably optimal over the candidate set); above it, it
//! degrades to greedy forward selection. The `xp patel` experiment runs it
//! on truncated traces as the extension study DESIGN.md calls out.

use crate::bitselect::BitSelectIndex;
use unicache_core::hasher::det_map;
use unicache_core::{BlockAddr, ConfigError, DetHashMap, Result};

/// Configurable optimal-index search.
#[derive(Debug, Clone)]
pub struct PatelSearch {
    /// Number of index bits to choose.
    pub m: usize,
    /// Candidate block-address bit positions.
    pub candidates: Vec<u32>,
    /// Maximum number of combinations to evaluate exhaustively before
    /// falling back to greedy forward selection.
    pub max_combinations: u64,
}

/// Result of a search: the chosen bits, the trace cost (direct-mapped
/// misses) they achieve, and whether the search was exhaustive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Selected bit positions (ascending).
    pub bits: Vec<u32>,
    /// Misses incurred replaying the trace through a direct-mapped cache
    /// indexed by `bits`.
    pub cost: u64,
    /// True if every combination was evaluated (optimal over candidates).
    pub exhaustive: bool,
}

/// A trace compiled against a candidate set, shared by every combination
/// the search evaluates: consecutive duplicate blocks are collapsed (the
/// second reference hits under *every* bit selection, so it can never
/// change a combination's cost), blocks are renamed to dense ids, and each
/// unique block's candidate bits are packed into one signature word.
/// Evaluating a combination then costs one small table build over the
/// unique blocks plus a linear pass over the compacted sequence, instead
/// of re-extracting `m` bits from every raw reference.
struct CompiledTrace {
    /// Per unique block: bit `j` holds the value of candidate bit `j`.
    sigs: Vec<u64>,
    /// The reference stream as unique-block ids, consecutive duplicates
    /// removed.
    seq: Vec<u32>,
}

impl CompiledTrace {
    fn new(candidates: &[u32], blocks: &[BlockAddr]) -> Self {
        let mut ids: DetHashMap<BlockAddr, u32> = det_map();
        let mut sigs: Vec<u64> = Vec::new();
        let mut seq: Vec<u32> = Vec::with_capacity(blocks.len());
        let mut prev: Option<BlockAddr> = None;
        for &b in blocks {
            if prev == Some(b) {
                continue;
            }
            prev = Some(b);
            let next = sigs.len() as u32;
            let id = *ids.entry(b).or_insert_with(|| {
                let sig = candidates
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (j, &bit)| acc | (((b >> bit) & 1) << j));
                sigs.push(sig);
                next
            });
            seq.push(id);
        }
        CompiledTrace { sigs, seq }
    }

    /// Misses of the direct-mapped cache indexed by the candidate
    /// *positions* `pos` — exactly [`PatelSearch::cost`] of the
    /// corresponding bit set over the original trace — with a
    /// branch-and-bound cutoff: once the running miss count reaches
    /// `bound` the replay aborts and returns the partial count. Misses
    /// only accumulate, so an aborted combination's true cost is
    /// `>= bound` as well; a caller that keeps its winner under a strict
    /// `<` comparison against `bound` selects exactly the combination an
    /// unbounded evaluation would. Pass `u64::MAX` for an exact count.
    /// `idx_of` and `resident` are caller-owned scratch so the hot search
    /// loops do not reallocate per combination.
    fn cost(
        &self,
        pos: &[usize],
        bound: u64,
        idx_of: &mut Vec<u32>,
        resident: &mut Vec<u32>,
    ) -> u64 {
        // Position-outer, signatures-inner: each pass is one contiguous
        // shift/mask/or sweep over the signature array, which the
        // compiler vectorizes; the per-signature fold over `pos` did not.
        idx_of.clear();
        idx_of.resize(self.sigs.len(), 0);
        for (out, &p) in pos.iter().enumerate() {
            for (acc, &sig) in idx_of.iter_mut().zip(&self.sigs) {
                *acc |= (((sig >> p) & 1) as u32) << out;
            }
        }
        resident.clear();
        resident.resize(1usize << pos.len(), u32::MAX);
        let mut misses = 0u64;
        for &id in &self.seq {
            let slot = idx_of[id as usize] as usize;
            if resident[slot] != id {
                misses += 1;
                if misses >= bound {
                    return misses;
                }
                resident[slot] = id;
            }
        }
        misses
    }
}

impl PatelSearch {
    /// A search for `m` bits among `candidates`, exhaustive up to
    /// `max_combinations` evaluated combinations.
    pub fn new(m: usize, candidates: Vec<u32>, max_combinations: u64) -> Result<Self> {
        if m == 0 {
            return Err(ConfigError::OutOfRange {
                what: "index bits",
                expected: ">= 1".into(),
                got: 0,
            });
        }
        if candidates.len() < m {
            return Err(ConfigError::InvalidParameter {
                what: format!("need at least {m} candidate bits, got {}", candidates.len()),
            });
        }
        let mut sorted = candidates.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != candidates.len() {
            return Err(ConfigError::InvalidParameter {
                what: "duplicate candidate bits".into(),
            });
        }
        Ok(PatelSearch {
            m,
            candidates: sorted,
            max_combinations,
        })
    }

    /// Cost of one bit combination: misses of a direct-mapped, 2^bits.len()
    /// set cache replaying `blocks` in order.
    pub fn cost(bits: &[u32], blocks: &[BlockAddr]) -> u64 {
        let sets = 1usize << bits.len();
        // Sentinel: no block address is u64::MAX in practice (would imply a
        // byte address beyond the 64-bit space).
        let mut resident: Vec<u64> = vec![u64::MAX; sets];
        let mut misses = 0u64;
        for &b in blocks {
            let mut idx = 0usize;
            for (out, &bit) in bits.iter().enumerate() {
                idx |= (((b >> bit) & 1) as usize) << out;
            }
            if resident[idx] != b {
                misses += 1;
                resident[idx] = b;
            }
        }
        misses
    }

    /// Number of combinations `C(n, m)` the exhaustive search would visit,
    /// saturating at `u64::MAX`.
    pub fn combination_count(&self) -> u64 {
        let n = self.candidates.len() as u64;
        let m = self.m as u64;
        let mut acc: u128 = 1;
        for i in 0..m {
            acc = acc * (n - i) as u128 / (i + 1) as u128;
            if acc > u64::MAX as u128 {
                return u64::MAX;
            }
        }
        acc as u64
    }

    /// Runs the search over an ordered block-address trace.
    pub fn search(&self, blocks: &[BlockAddr]) -> SearchOutcome {
        let compiled = CompiledTrace::new(&self.candidates, blocks);
        if self.combination_count() <= self.max_combinations {
            self.search_exhaustive(&compiled)
        } else {
            self.search_greedy(&compiled)
        }
    }

    fn search_exhaustive(&self, ct: &CompiledTrace) -> SearchOutcome {
        let n = self.candidates.len();
        let m = self.m;
        let mut idx_of = Vec::new();
        let mut resident = Vec::new();
        let mut idx: Vec<usize> = (0..m).collect();
        // Seed the incumbent bound with the greedy solution (a few dozen
        // evaluations) so pruning bites from the first combination. The
        // bound starts one *above* the seed's cost: every combination
        // whose true cost ties the seed is still replayed exactly, so the
        // winner remains the lexicographically first minimizer — the same
        // outcome an unseeded search reports. The greedy set is itself one
        // of the enumerated combinations, so `best_pos` is always
        // overwritten before the search returns.
        let seed = self.search_greedy(ct);
        let mut best_pos = idx.clone();
        let mut best_cost = seed.cost + 1;
        let first = ct.cost(&idx, best_cost, &mut idx_of, &mut resident);
        if first < best_cost {
            best_cost = first;
        }
        loop {
            // Advance to the next m-combination of 0..n in lexicographic
            // order.
            let mut i = m;
            loop {
                if i == 0 {
                    return SearchOutcome {
                        bits: best_pos.iter().map(|&i| self.candidates[i]).collect(),
                        cost: best_cost,
                        exhaustive: true,
                    };
                }
                i -= 1;
                if idx[i] != i + n - m {
                    break;
                }
            }
            idx[i] += 1;
            for j in i + 1..m {
                idx[j] = idx[j - 1] + 1;
            }
            // Bounded by the incumbent: a combination that reaches
            // `best_cost` misses can no longer win, so its replay aborts.
            let cost = ct.cost(&idx, best_cost, &mut idx_of, &mut resident);
            if cost < best_cost {
                best_cost = cost;
                best_pos.copy_from_slice(&idx);
            }
        }
    }

    fn search_greedy(&self, ct: &CompiledTrace) -> SearchOutcome {
        let mut idx_of = Vec::new();
        let mut resident = Vec::new();
        let mut selected: Vec<usize> = Vec::with_capacity(self.m);
        let mut remaining: Vec<usize> = (0..self.candidates.len()).collect();
        while selected.len() < self.m {
            let mut best: Option<(usize, u64)> = None;
            for (pos, &cand) in remaining.iter().enumerate() {
                let mut trial = selected.clone();
                trial.push(cand);
                trial.sort_unstable();
                let bound = best.map_or(u64::MAX, |(_, c)| c);
                let cost = ct.cost(&trial, bound, &mut idx_of, &mut resident);
                match best {
                    None => best = Some((pos, cost)),
                    Some((_, c)) if cost < c => best = Some((pos, cost)),
                    _ => {}
                }
            }
            // `remaining` stays non-empty while `selected.len() < m`
            // (candidates.len() >= m is validated in `new`), so the
            // `break` is unreachable but keeps the argmin infallible.
            let Some((pos, _)) = best else { break };
            selected.push(remaining.remove(pos));
            selected.sort_unstable();
        }
        // Exact (unbounded) cost for the reported outcome.
        let cost = ct.cost(&selected, u64::MAX, &mut idx_of, &mut resident);
        SearchOutcome {
            bits: selected.iter().map(|&i| self.candidates[i]).collect(),
            cost,
            exhaustive: false,
        }
    }

    /// Convenience: runs the search and wraps the winner as an index
    /// function.
    ///
    /// # Errors
    /// Propagates [`BitSelectIndex`] validation — unreachable for outcomes
    /// of [`PatelSearch::search`], whose bit sets are distinct and within
    /// range by construction, but surfaced as a `Result` rather than a
    /// panic.
    pub fn search_index(&self, blocks: &[BlockAddr]) -> Result<(BitSelectIndex, SearchOutcome)> {
        let outcome = self.search(blocks);
        let f = BitSelectIndex::named(outcome.bits.clone(), "patel")?;
        Ok((f, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicache_core::IndexFunction;

    #[test]
    fn validation() {
        assert!(PatelSearch::new(0, vec![0, 1], 100).is_err());
        assert!(PatelSearch::new(3, vec![0, 1], 100).is_err());
        assert!(PatelSearch::new(2, vec![0, 0, 1], 100).is_err());
        assert!(PatelSearch::new(2, vec![0, 1, 2], 100).is_ok());
    }

    #[test]
    fn combination_counting() {
        let s = PatelSearch::new(2, vec![0, 1, 2, 3], 100).unwrap();
        assert_eq!(s.combination_count(), 6);
        let s = PatelSearch::new(5, (0..20).collect(), 100).unwrap();
        assert_eq!(s.combination_count(), 15_504);
    }

    #[test]
    fn cost_counts_direct_mapped_misses() {
        // Two blocks, same low bit, different bit 1. Index on bit 0: both
        // land in set 0, ping-pong forever. Index on bit 1: no conflicts.
        let blocks = vec![0b00u64, 0b10, 0b00, 0b10, 0b00, 0b10];
        assert_eq!(PatelSearch::cost(&[0], &blocks), 6);
        assert_eq!(PatelSearch::cost(&[1], &blocks), 2); // two cold misses
    }

    #[test]
    fn exhaustive_search_finds_the_conflict_free_bit() {
        let blocks: Vec<u64> = (0..100)
            .flat_map(|_| [0b000u64, 0b100]) // differ only in bit 2
            .collect();
        let s = PatelSearch::new(1, vec![0, 1, 2], 1000).unwrap();
        let out = s.search(&blocks);
        assert!(out.exhaustive);
        assert_eq!(out.bits, vec![2]);
        assert_eq!(out.cost, 2);
    }

    #[test]
    fn exhaustive_matches_brute_force_on_small_case() {
        let blocks: Vec<u64> = vec![3, 9, 3, 12, 9, 3, 5, 12, 9, 5, 3, 7, 9];
        let s = PatelSearch::new(2, vec![0, 1, 2, 3], 1_000).unwrap();
        let out = s.search(&blocks);
        assert!(out.exhaustive);
        // Brute-force all 6 pairs independently.
        let mut best = u64::MAX;
        for a in 0..4u32 {
            for b in a + 1..4 {
                best = best.min(PatelSearch::cost(&[a, b], &blocks));
            }
        }
        assert_eq!(out.cost, best);
    }

    #[test]
    fn branch_and_bound_matches_unpruned_brute_force() {
        // The bounded replay aborts most combinations early; the selected
        // bits and reported cost must still equal an exact evaluation of
        // every combination (the pre-pruning behaviour).
        let blocks: Vec<u64> = (0..2000u64)
            .map(|i| (i * 193 + (i >> 3) * 7) % 611)
            .collect();
        let s = PatelSearch::new(3, (0..10).collect(), u64::MAX).unwrap();
        let out = s.search(&blocks);
        assert!(out.exhaustive);
        let mut best = u64::MAX;
        let mut best_bits = Vec::new();
        for a in 0..10u32 {
            for b in a + 1..10 {
                for c in b + 1..10 {
                    let cost = PatelSearch::cost(&[a, b, c], &blocks);
                    if cost < best {
                        best = cost;
                        best_bits = vec![a, b, c];
                    }
                }
            }
        }
        assert_eq!(out.cost, best);
        assert_eq!(out.bits, best_bits);
        assert_eq!(PatelSearch::cost(&out.bits, &blocks), out.cost);
    }

    #[test]
    fn greedy_fallback_triggers_and_is_reasonable() {
        let blocks: Vec<u64> = (0..500u64).map(|i| (i * 37) % 257).collect();
        let s = PatelSearch::new(3, (0..12).collect(), 5).unwrap(); // budget 5 < C(12,3)
        let out = s.search(&blocks);
        assert!(!out.exhaustive);
        assert_eq!(out.bits.len(), 3);
        // Greedy must never beat exhaustive but must be sane: cost bounded
        // by the trace length.
        assert!(out.cost <= blocks.len() as u64);
        let ex = PatelSearch::new(3, (0..12).collect(), u64::MAX)
            .unwrap()
            .search(&blocks);
        assert!(ex.exhaustive);
        assert!(ex.cost <= out.cost);
    }

    #[test]
    fn search_index_wraps_winner() {
        let blocks: Vec<u64> = (0..64u64).collect();
        let s = PatelSearch::new(3, (0..8).collect(), u64::MAX).unwrap();
        let (f, out) = s.search_index(&blocks).unwrap();
        assert_eq!(f.num_sets(), 8);
        assert_eq!(f.bits(), &out.bits[..]);
        for &b in &blocks {
            assert!(f.index_block(b) < 8);
        }
    }

    #[test]
    fn empty_trace_costs_zero() {
        assert_eq!(PatelSearch::cost(&[0, 1], &[]), 0);
        let s = PatelSearch::new(2, vec![0, 1, 2], 100).unwrap();
        let out = s.search(&[]);
        assert_eq!(out.cost, 0);
    }
}
