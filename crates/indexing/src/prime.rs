//! Prime-modulo indexing (paper Section II.B, Eq. 3).
//!
//! `index = block_address mod p`, with `p` the largest prime not exceeding
//! the set count. Prime moduli spread regular strides that power-of-two
//! moduli fold onto a few sets. Costs: `p < sets` leaves `sets - p` sets
//! unused (*cache fragmentation*, per the paper), and real hardware needs
//! multi-cycle modulo units — both faithfully modeled here (fragmentation in
//! the mapping, latency in `unicache-timing`).

use crate::primes::largest_prime_leq;
use unicache_core::{
    is_pow2, BlockAddr, ConfigError, IndexFunction, Result, SimdLanes, SIMD_LANES,
};

/// Prime-modulo hashing.
#[derive(Debug, Clone)]
pub struct PrimeModuloIndex {
    sets: usize,
    prime: u64,
    /// Lemire fastmod constant `ceil(2^128 / prime)`, precomputed so the
    /// batched kernel replaces the hardware divide with two multiplies.
    magic: u128,
    name: String,
}

/// `ceil(2^128 / d)` for `d >= 2` (Lemire, "Faster remainder by direct
/// computation", 2019). With `M = magic`, `n mod d` is the high 64 bits of
/// `(M * n mod 2^128) * d` — exact for every 64-bit `n`.
fn fastmod_magic(d: u64) -> u128 {
    u128::MAX / u128::from(d) + 1
}

/// `n mod d` via the precomputed fastmod constant.
#[inline]
fn fastmod(n: u64, magic: u128, d: u64) -> u64 {
    let lowbits = magic.wrapping_mul(u128::from(n));
    // High 64 bits of the 128x64-bit product `lowbits * d`, computed in
    // two 64x64 halves (no native u192).
    let d = u128::from(d);
    let bottom = ((lowbits & u128::from(u64::MAX)) * d) >> 64;
    let top = (lowbits >> 64) * d;
    (((bottom + top) >> 64) & u128::from(u64::MAX)) as u64
}

impl PrimeModuloIndex {
    /// Uses the largest prime `<= sets`.
    pub fn new(sets: usize) -> Result<Self> {
        if !is_pow2(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "prime-modulo cache sets",
                value: sets as u64,
            });
        }
        let prime = largest_prime_leq(sets as u64).ok_or(ConfigError::OutOfRange {
            what: "prime-modulo sets",
            expected: ">= 2".into(),
            got: sets as u64,
        })?;
        Ok(PrimeModuloIndex {
            sets,
            prime,
            magic: fastmod_magic(prime),
            name: format!("prime_modulo({prime})"),
        })
    }

    /// Uses an explicit prime `p <= sets` (for ablations with smaller
    /// primes and more fragmentation).
    pub fn with_prime(sets: usize, p: u64) -> Result<Self> {
        if !is_pow2(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "prime-modulo cache sets",
                value: sets as u64,
            });
        }
        if !crate::primes::is_prime(p) {
            return Err(ConfigError::InvalidParameter {
                what: format!("{p} is not prime"),
            });
        }
        if p > sets as u64 {
            return Err(ConfigError::OutOfRange {
                what: "prime modulus",
                expected: format!("<= {sets}"),
                got: p,
            });
        }
        Ok(PrimeModuloIndex {
            sets,
            prime: p,
            magic: fastmod_magic(p),
            name: format!("prime_modulo({p})"),
        })
    }

    /// The modulus in use.
    pub fn prime(&self) -> u64 {
        self.prime
    }

    /// Number of sets this function can never produce (`sets - p`).
    pub fn fragmented_sets(&self) -> usize {
        self.sets - self.prime as usize
    }
}

impl IndexFunction for PrimeModuloIndex {
    #[inline]
    fn index_block(&self, block: BlockAddr) -> usize {
        (block % self.prime) as usize
    }

    fn num_sets(&self) -> usize {
        self.sets
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn index_many(&self, blocks: &[BlockAddr], out: &mut [usize]) {
        let magic = self.magic;
        let prime = self.prime;
        // The scalar fallback stays `% prime` so the equivalence property
        // tests cross-validate the fastmod constant against the hardware
        // divide on every scheme sweep.
        SimdLanes::map(
            blocks,
            out,
            |b8, o8| {
                for l in 0..SIMD_LANES {
                    o8[l] = fastmod(b8[l], magic, prime) as usize;
                }
            },
            |b| self.index_block(b),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_cache_uses_1021() {
        let f = PrimeModuloIndex::new(1024).unwrap();
        assert_eq!(f.prime(), 1021);
        assert_eq!(f.fragmented_sets(), 3);
        assert_eq!(f.name(), "prime_modulo(1021)");
        assert_eq!(f.num_sets(), 1024);
    }

    #[test]
    fn mapping_is_block_mod_p() {
        let f = PrimeModuloIndex::new(1024).unwrap();
        assert_eq!(f.index_block(0), 0);
        assert_eq!(f.index_block(1021), 0);
        assert_eq!(f.index_block(1022), 1);
        assert_eq!(f.index_block(123_456_789), (123_456_789u64 % 1021) as usize);
    }

    #[test]
    fn top_sets_are_never_used() {
        let f = PrimeModuloIndex::new(1024).unwrap();
        for block in 0..100_000u64 {
            assert!(f.index_block(block) < 1021);
        }
    }

    #[test]
    fn explicit_prime_validation() {
        assert!(PrimeModuloIndex::with_prime(1024, 509).is_ok());
        assert!(PrimeModuloIndex::with_prime(1024, 1021).is_ok());
        assert!(PrimeModuloIndex::with_prime(1024, 1022).is_err()); // composite
        assert!(PrimeModuloIndex::with_prime(1024, 2039).is_err()); // > sets
        assert!(PrimeModuloIndex::with_prime(1000, 509).is_err()); // sets not pow2
    }

    #[test]
    fn spreads_power_of_two_strides() {
        // Stride of exactly `sets` blocks: conventional indexing maps every
        // reference to set 0; prime modulo spreads them.
        let f = PrimeModuloIndex::new(1024).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..100u64 {
            seen.insert(f.index_block(i * 1024));
        }
        assert!(seen.len() > 90, "only {} distinct sets", seen.len());
    }

    proptest! {
        #[test]
        fn always_below_prime(block in proptest::num::u64::ANY) {
            let f = PrimeModuloIndex::new(1024).unwrap();
            prop_assert!(f.index_block(block) < 1021);
        }

        /// The fastmod constant is exact for any divisor (not only primes)
        /// over the full 64-bit input range.
        #[test]
        fn fastmod_matches_hardware_modulo(n in proptest::num::u64::ANY, d in 2u64..u64::MAX) {
            prop_assert_eq!(fastmod(n, fastmod_magic(d), d), n % d);
        }

        /// The batched kernel agrees with `% prime` element-for-element,
        /// including the ragged tail.
        #[test]
        fn index_many_matches_scalar(seed in proptest::num::u64::ANY, len in 0usize..40) {
            let f = PrimeModuloIndex::new(1024).unwrap();
            let blocks: Vec<u64> = (0..len as u64)
                .map(|i| seed.wrapping_mul(i.wrapping_add(0x9E3779B97F4A7C15)))
                .collect();
            let mut out = vec![0usize; len];
            f.index_many(&blocks, &mut out);
            for (i, &b) in blocks.iter().enumerate() {
                prop_assert_eq!(out[i], f.index_block(b));
            }
        }
    }
}
