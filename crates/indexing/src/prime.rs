//! Prime-modulo indexing (paper Section II.B, Eq. 3).
//!
//! `index = block_address mod p`, with `p` the largest prime not exceeding
//! the set count. Prime moduli spread regular strides that power-of-two
//! moduli fold onto a few sets. Costs: `p < sets` leaves `sets - p` sets
//! unused (*cache fragmentation*, per the paper), and real hardware needs
//! multi-cycle modulo units — both faithfully modeled here (fragmentation in
//! the mapping, latency in `unicache-timing`).

use crate::primes::largest_prime_leq;
use unicache_core::{is_pow2, BlockAddr, ConfigError, IndexFunction, Result};

/// Prime-modulo hashing.
#[derive(Debug, Clone)]
pub struct PrimeModuloIndex {
    sets: usize,
    prime: u64,
    name: String,
}

impl PrimeModuloIndex {
    /// Uses the largest prime `<= sets`.
    pub fn new(sets: usize) -> Result<Self> {
        if !is_pow2(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "prime-modulo cache sets",
                value: sets as u64,
            });
        }
        let prime = largest_prime_leq(sets as u64).ok_or(ConfigError::OutOfRange {
            what: "prime-modulo sets",
            expected: ">= 2".into(),
            got: sets as u64,
        })?;
        Ok(PrimeModuloIndex {
            sets,
            prime,
            name: format!("prime_modulo({prime})"),
        })
    }

    /// Uses an explicit prime `p <= sets` (for ablations with smaller
    /// primes and more fragmentation).
    pub fn with_prime(sets: usize, p: u64) -> Result<Self> {
        if !is_pow2(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "prime-modulo cache sets",
                value: sets as u64,
            });
        }
        if !crate::primes::is_prime(p) {
            return Err(ConfigError::InvalidParameter {
                what: format!("{p} is not prime"),
            });
        }
        if p > sets as u64 {
            return Err(ConfigError::OutOfRange {
                what: "prime modulus",
                expected: format!("<= {sets}"),
                got: p,
            });
        }
        Ok(PrimeModuloIndex {
            sets,
            prime: p,
            name: format!("prime_modulo({p})"),
        })
    }

    /// The modulus in use.
    pub fn prime(&self) -> u64 {
        self.prime
    }

    /// Number of sets this function can never produce (`sets - p`).
    pub fn fragmented_sets(&self) -> usize {
        self.sets - self.prime as usize
    }
}

impl IndexFunction for PrimeModuloIndex {
    #[inline]
    fn index_block(&self, block: BlockAddr) -> usize {
        (block % self.prime) as usize
    }

    fn num_sets(&self) -> usize {
        self.sets
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_cache_uses_1021() {
        let f = PrimeModuloIndex::new(1024).unwrap();
        assert_eq!(f.prime(), 1021);
        assert_eq!(f.fragmented_sets(), 3);
        assert_eq!(f.name(), "prime_modulo(1021)");
        assert_eq!(f.num_sets(), 1024);
    }

    #[test]
    fn mapping_is_block_mod_p() {
        let f = PrimeModuloIndex::new(1024).unwrap();
        assert_eq!(f.index_block(0), 0);
        assert_eq!(f.index_block(1021), 0);
        assert_eq!(f.index_block(1022), 1);
        assert_eq!(f.index_block(123_456_789), (123_456_789u64 % 1021) as usize);
    }

    #[test]
    fn top_sets_are_never_used() {
        let f = PrimeModuloIndex::new(1024).unwrap();
        for block in 0..100_000u64 {
            assert!(f.index_block(block) < 1021);
        }
    }

    #[test]
    fn explicit_prime_validation() {
        assert!(PrimeModuloIndex::with_prime(1024, 509).is_ok());
        assert!(PrimeModuloIndex::with_prime(1024, 1021).is_ok());
        assert!(PrimeModuloIndex::with_prime(1024, 1022).is_err()); // composite
        assert!(PrimeModuloIndex::with_prime(1024, 2039).is_err()); // > sets
        assert!(PrimeModuloIndex::with_prime(1000, 509).is_err()); // sets not pow2
    }

    #[test]
    fn spreads_power_of_two_strides() {
        // Stride of exactly `sets` blocks: conventional indexing maps every
        // reference to set 0; prime modulo spreads them.
        let f = PrimeModuloIndex::new(1024).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..100u64 {
            seen.insert(f.index_block(i * 1024));
        }
        assert!(seen.len() > 90, "only {} distinct sets", seen.len());
    }

    proptest! {
        #[test]
        fn always_below_prime(block in proptest::num::u64::ANY) {
            let f = PrimeModuloIndex::new(1024).unwrap();
            prop_assert!(f.index_block(block) < 1021);
        }
    }
}
