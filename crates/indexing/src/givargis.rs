//! Givargis' trace-trained index-bit selection (paper Section II.A) and the
//! paper's own Givargis-XOR hybrid (Section II.E).
//!
//! From the unique addresses of a profiling trace:
//!
//! * each candidate bit `i` gets a **quality** `Q_i = min(Z_i, O_i) /
//!   max(Z_i, O_i)` (Eq. 1) — how evenly the bit splits the address set;
//! * each bit pair gets a **correlation** `C_{i,j} = min(E_{i,j}, D_{i,j}) /
//!   max(E_{i,j}, D_{i,j})` (Eq. 2) — *low* `C` means the pair is strongly
//!   dependent (mostly-equal or mostly-complementary), *high* `C` means the
//!   bits are independent;
//! * bits are selected greedily: pick the highest-scoring bit, then damp
//!   every remaining bit's score by its correlation with the pick (the
//!   paper's "dot product between the quality value vector and the
//!   correlation vector for the selected bit"), repeat until `m` bits are
//!   chosen.
//!
//! Following the paper's methodology note, byte-offset bits are **not**
//! candidates: training operates on *block* addresses. (The paper blames
//! exactly this exclusion for Givargis' poor showing at 32-byte lines, and
//! our Fig. 4 reproduction shows the same effect; the
//! `ablation_givargis_linesize` bench sweeps it.)

use crate::bitselect::BitSelectIndex;
use unicache_core::{is_pow2, BlockAddr, CacheGeometry, ConfigError, IndexFunction, Result};

/// Per-bit quality and pairwise correlation measured over unique addresses.
#[derive(Debug, Clone)]
pub struct GivargisTrainer {
    /// Candidate bit positions (block-address bit space), ascending.
    candidates: Vec<u32>,
    /// `quality[k]` = Q of `candidates[k]` (Eq. 1).
    quality: Vec<f64>,
    /// `correlation[a][b]` = C of `(candidates[a], candidates[b])` (Eq. 2).
    correlation: Vec<Vec<f64>>,
}

impl GivargisTrainer {
    /// Measures bit statistics over `unique_blocks` for candidate bits
    /// `0..max_bits` of the block address.
    ///
    /// # Errors
    /// [`ConfigError::EmptyTrainingTrace`] if no addresses are supplied.
    pub fn measure(unique_blocks: &[BlockAddr], max_bits: u32) -> Result<Self> {
        if unique_blocks.is_empty() {
            return Err(ConfigError::EmptyTrainingTrace);
        }
        let n = unique_blocks.len() as u64;
        // Count ones per bit.
        let mut ones = vec![0u64; max_bits as usize];
        for &b in unique_blocks {
            for (i, o) in ones.iter_mut().enumerate() {
                *o += (b >> i) & 1;
            }
        }
        // Candidates: every bit that actually varies. Constant bits carry
        // zero information (Q = 0) and would fragment the cache.
        let candidates: Vec<u32> = (0..max_bits)
            .filter(|&i| {
                let o = ones[i as usize];
                o != 0 && o != n
            })
            .collect();
        let quality: Vec<f64> = candidates
            .iter()
            .map(|&i| {
                let o = ones[i as usize];
                let z = n - o;
                o.min(z) as f64 / o.max(z) as f64
            })
            .collect();
        // Pairwise equal/different counts.
        let k = candidates.len();
        let mut equal = vec![vec![0u64; k]; k];
        for &b in unique_blocks {
            for a in 0..k {
                let ba = (b >> candidates[a]) & 1;
                for c in (a + 1)..k {
                    let bc = (b >> candidates[c]) & 1;
                    if ba == bc {
                        equal[a][c] += 1;
                    }
                }
            }
        }
        let mut correlation = vec![vec![1.0f64; k]; k];
        for a in 0..k {
            for c in (a + 1)..k {
                let e = equal[a][c];
                let d = n - e;
                let corr = if e.max(d) == 0 {
                    1.0
                } else {
                    e.min(d) as f64 / e.max(d) as f64
                };
                correlation[a][c] = corr;
                correlation[c][a] = corr;
            }
        }
        Ok(GivargisTrainer {
            candidates,
            quality,
            correlation,
        })
    }

    /// Candidate bit positions that vary over the training set.
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    /// Quality of candidate `k` (parallel to [`Self::candidates`]).
    pub fn quality(&self) -> &[f64] {
        &self.quality
    }

    /// Greedily selects `m` bit positions: highest score first, damping the
    /// remaining scores by their correlation with each pick.
    ///
    /// Falls back to constant bits only if fewer than `m` candidates vary
    /// (degenerate traces); in that case the remaining positions are filled
    /// with the lowest unused block-address bits so the function still
    /// produces a full-width index.
    pub fn select(&self, m: usize) -> Vec<u32> {
        let k = self.candidates.len();
        let mut score = self.quality.clone();
        let mut picked: Vec<usize> = Vec::with_capacity(m);
        let mut used = vec![false; k];
        while picked.len() < m.min(k) {
            // argmax over unused candidates; ties broken toward the lowest
            // bit position for determinism.
            let mut best: Option<usize> = None;
            for i in 0..k {
                if used[i] {
                    continue;
                }
                match best {
                    None => best = Some(i),
                    Some(b) if score[i] > score[b] => best = Some(i),
                    _ => {}
                }
            }
            // The loop guard keeps `picked.len() < k`, so an unused
            // candidate always exists; the `break` is unreachable but
            // keeps the argmax infallible.
            let Some(b) = best else { break };
            used[b] = true;
            picked.push(b);
            // Damp remaining scores: a bit strongly dependent on the pick
            // (low C means mostly-equal or mostly-complementary — it adds
            // no new separation power) is penalized toward zero.
            for i in 0..k {
                if !used[i] {
                    score[i] *= self.correlation[i][b];
                }
            }
        }
        let mut bits: Vec<u32> = picked.into_iter().map(|i| self.candidates[i]).collect();
        // Degenerate fallback: pad with unused low bits.
        let mut next = 0u32;
        while bits.len() < m {
            if !bits.contains(&next) {
                bits.push(next);
            }
            next += 1;
        }
        bits.sort_unstable();
        bits
    }
}

/// The Givargis index: `m` trained bit positions gathered into a set index.
#[derive(Debug, Clone)]
pub struct GivargisIndex {
    inner: BitSelectIndex,
}

impl GivargisIndex {
    /// Trains an index for `geom.num_sets()` sets from the unique block
    /// addresses of a profiling trace.
    ///
    /// `max_bits` bounds the candidate bit range (address bits above
    /// `geom.offset_bits() + max_bits` are ignored); 32 covers 4 GiB images.
    pub fn train(unique_blocks: &[BlockAddr], geom: CacheGeometry, max_bits: u32) -> Result<Self> {
        let trainer = GivargisTrainer::measure(unique_blocks, max_bits)?;
        let bits = trainer.select(geom.index_bits() as usize);
        Ok(GivargisIndex {
            inner: BitSelectIndex::named(bits, "givargis")?,
        })
    }

    /// The trained bit positions.
    pub fn bits(&self) -> &[u32] {
        self.inner.bits()
    }
}

impl IndexFunction for GivargisIndex {
    #[inline]
    fn index_block(&self, block: BlockAddr) -> usize {
        self.inner.index_block(block)
    }
    fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }
    fn name(&self) -> &str {
        "givargis"
    }
    fn index_many(&self, blocks: &[BlockAddr], out: &mut [usize]) {
        // Forward to the bit-select gather kernel; the default body would
        // fall back to per-element `index_block`.
        self.inner.index_many(blocks, out);
    }
}

/// The paper's hybrid (Section II.E): gather `m` high-quality, low-mutual-
/// correlation **tag** bits with the Givargis method, then XOR them with
/// the conventional index bits.
#[derive(Debug, Clone)]
pub struct GivargisXorIndex {
    tag_bits: BitSelectIndex,
    mask: u64,
    sets: usize,
}

impl GivargisXorIndex {
    /// Trains the tag-bit selection from unique block addresses.
    ///
    /// Candidates are restricted to tag positions (block-address bits at or
    /// above `geom.index_bits()`), so the XOR mixes *new* information into
    /// the index rather than permuting the index bits themselves.
    pub fn train(unique_blocks: &[BlockAddr], geom: CacheGeometry, max_bits: u32) -> Result<Self> {
        if !is_pow2(geom.num_sets() as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "givargis-xor sets",
                value: geom.num_sets() as u64,
            });
        }
        let m = geom.index_bits();
        let trainer = GivargisTrainer::measure(unique_blocks, max_bits.max(m * 2))?;
        // Keep only tag-region candidates, preserving their scores by
        // re-measuring on the shifted addresses (equivalent and simpler:
        // filter selections).
        let all = trainer.select_from_tag_region(m as usize, m);
        let tag_bits = BitSelectIndex::named(all, "givargis_xor_tag")?;
        Ok(GivargisXorIndex {
            tag_bits,
            mask: geom.num_sets() as u64 - 1,
            sets: geom.num_sets(),
        })
    }

    /// The trained tag-bit positions.
    pub fn tag_bit_positions(&self) -> &[u32] {
        self.tag_bits.bits()
    }
}

impl GivargisTrainer {
    /// Like [`GivargisTrainer::select`], but only candidates at or above
    /// bit `floor` participate; pads from the tag region when necessary.
    pub fn select_from_tag_region(&self, m: usize, floor: u32) -> Vec<u32> {
        let k = self.candidates.len();
        let mut score: Vec<f64> = self
            .quality
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                if self.candidates[i] >= floor {
                    q
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        let eligible = score.iter().filter(|s| s.is_finite()).count();
        let mut picked: Vec<usize> = Vec::with_capacity(m);
        let mut used = vec![false; k];
        while picked.len() < m.min(eligible) {
            let mut best: Option<usize> = None;
            for i in 0..k {
                if used[i] || !score[i].is_finite() {
                    continue;
                }
                match best {
                    None => best = Some(i),
                    Some(b) if score[i] > score[b] => best = Some(i),
                    _ => {}
                }
            }
            let Some(b) = best else { break };
            used[b] = true;
            picked.push(b);
            for i in 0..k {
                if !used[i] && score[i].is_finite() {
                    score[i] *= self.correlation[i][b];
                }
            }
        }
        let mut bits: Vec<u32> = picked.into_iter().map(|i| self.candidates[i]).collect();
        let mut next = floor;
        while bits.len() < m {
            if !bits.contains(&next) {
                bits.push(next);
            }
            next += 1;
        }
        bits.sort_unstable();
        bits
    }
}

impl IndexFunction for GivargisXorIndex {
    #[inline]
    fn index_block(&self, block: BlockAddr) -> usize {
        let conventional = block & self.mask;
        let gathered = self.tag_bits.index_block(block) as u64;
        ((conventional ^ gathered) & self.mask) as usize
    }
    fn num_sets(&self) -> usize {
        self.sets
    }
    fn name(&self) -> &str {
        "givargis_xor"
    }
    fn index_many(&self, blocks: &[BlockAddr], out: &mut [usize]) {
        let mask = self.mask;
        let bits = self.tag_bits.bits();
        unicache_core::SimdLanes::map(
            blocks,
            out,
            |b8, o8| {
                // Gather the trained tag bits (bits outer, lanes inner,
                // as in BitSelectIndex), then fold in the conventional
                // index bits with one XOR per lane.
                let mut acc = [0u64; unicache_core::SIMD_LANES];
                for (out_pos, &bit) in bits.iter().enumerate() {
                    for l in 0..unicache_core::SIMD_LANES {
                        acc[l] |= ((b8[l] >> bit) & 1) << out_pos;
                    }
                }
                for l in 0..unicache_core::SIMD_LANES {
                    o8[l] = ((b8[l] ^ acc[l]) & mask) as usize;
                }
            },
            |b| self.index_block(b),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn geom_64() -> CacheGeometry {
        CacheGeometry::from_sets(64, 32, 1).unwrap()
    }

    #[test]
    fn quality_formula_matches_eq1() {
        // Addresses chosen so bit 0 is balanced (Q=1), bit 1 is 3:1
        // (Q=1/3), bit 2 constant (dropped from candidates).
        let blocks = [0b001u64, 0b000, 0b011, 0b010];
        let t = GivargisTrainer::measure(&blocks, 3).unwrap();
        assert_eq!(t.candidates(), &[0, 1]);
        assert!((t.quality()[0] - 1.0).abs() < 1e-12);
        assert!((t.quality()[1] - 1.0).abs() < 1e-12);

        let blocks = [0b01u64, 0b00, 0b00, 0b00];
        let t = GivargisTrainer::measure(&blocks, 2).unwrap();
        assert_eq!(t.candidates(), &[0]);
        assert!((t.quality()[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_correlated_bits_are_not_both_picked() {
        // bit1 == bit0 always (E = n, D = 0 -> C = 0): after picking one,
        // the other's score collapses; bit 2 is independent and balanced.
        let blocks: Vec<u64> = vec![0b000, 0b011, 0b100, 0b111, 0b011, 0b100];
        let t = GivargisTrainer::measure(&blocks, 3).unwrap();
        let sel = t.select(2);
        assert!(sel.contains(&2), "independent bit must be chosen: {sel:?}");
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn empty_training_trace_is_rejected() {
        assert!(matches!(
            GivargisTrainer::measure(&[], 8),
            Err(ConfigError::EmptyTrainingTrace)
        ));
    }

    #[test]
    fn select_pads_degenerate_traces() {
        // One unique address: no bit varies, candidates empty.
        let t = GivargisTrainer::measure(&[0x42], 8).unwrap();
        assert!(t.candidates().is_empty());
        let bits = t.select(4);
        assert_eq!(bits, vec![0, 1, 2, 3]);
    }

    #[test]
    fn trained_index_stays_in_range_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let blocks: Vec<u64> = (0..2000).map(|_| rng.gen_range(0u64..1 << 20)).collect();
        let g = geom_64();
        let f1 = GivargisIndex::train(&blocks, g, 24).unwrap();
        let f2 = GivargisIndex::train(&blocks, g, 24).unwrap();
        assert_eq!(f1.bits(), f2.bits());
        assert_eq!(f1.num_sets(), 64);
        for &b in &blocks {
            assert!(f1.index_block(b) < 64);
        }
        assert_eq!(f1.name(), "givargis");
    }

    #[test]
    fn givargis_spreads_a_uniform_unique_set_evenly() {
        // For uniformly distributed unique addresses, the trained index
        // should spread them across most sets.
        let mut rng = StdRng::seed_from_u64(7);
        let blocks: Vec<u64> = (0..4096).map(|_| rng.gen_range(0u64..1 << 22)).collect();
        let f = GivargisIndex::train(&blocks, geom_64(), 22).unwrap();
        let mut counts = vec![0u32; 64];
        for &b in &blocks {
            counts[f.index_block(b)] += 1;
        }
        let used = counts.iter().filter(|&&c| c > 0).count();
        assert!(used >= 60, "only {used} sets used");
    }

    #[test]
    fn givargis_xor_uses_tag_bits_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let blocks: Vec<u64> = (0..2000).map(|_| rng.gen_range(0u64..1 << 24)).collect();
        let g = geom_64(); // 6 index bits
        let f = GivargisXorIndex::train(&blocks, g, 24).unwrap();
        for &p in f.tag_bit_positions() {
            assert!(p >= 6, "tag bit {p} is inside the index field");
        }
        assert_eq!(f.tag_bit_positions().len(), 6);
        for &b in &blocks {
            assert!(f.index_block(b) < 64);
        }
        assert_eq!(f.name(), "givargis_xor");
    }

    #[test]
    fn givargis_xor_differs_from_conventional_when_tags_vary() {
        let mut rng = StdRng::seed_from_u64(9);
        let blocks: Vec<u64> = (0..2000).map(|_| rng.gen_range(0u64..1 << 24)).collect();
        let g = geom_64();
        let f = GivargisXorIndex::train(&blocks, g, 24).unwrap();
        let diffs = blocks
            .iter()
            .filter(|&&b| f.index_block(b) != (b & 63) as usize)
            .count();
        assert!(diffs > blocks.len() / 2, "only {diffs} differ");
    }

    #[test]
    fn tag_region_selection_pads_when_no_tag_bits_vary() {
        // All variation in the low 3 bits; tag region constant.
        let blocks: Vec<u64> = (0..8u64).collect();
        let t = GivargisTrainer::measure(&blocks, 16).unwrap();
        let bits = t.select_from_tag_region(4, 6);
        assert_eq!(bits, vec![6, 7, 8, 9]);
    }
}
