//! Generic bit-selection indexing: gather `m` arbitrary block-address bits
//! into a set index. The building block under both the Givargis index and
//! Patel's optimal search.

use unicache_core::{BlockAddr, ConfigError, IndexFunction, Result, SimdLanes, SIMD_LANES};

/// An index formed by concatenating chosen block-address bits.
///
/// `bits[0]` supplies the least-significant index bit. Positions are in
/// *block address* bit space (bit 0 = lowest bit above the byte offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSelectIndex {
    bits: Vec<u32>,
    sets: usize,
    name: String,
}

impl BitSelectIndex {
    /// Builds an index from distinct bit positions (≤ 63 each).
    pub fn new(bits: Vec<u32>) -> Result<Self> {
        Self::named(bits, "bit_select")
    }

    /// Same, with a custom scheme name for reports.
    pub fn named(bits: Vec<u32>, scheme: &str) -> Result<Self> {
        if bits.is_empty() {
            return Err(ConfigError::InvalidParameter {
                what: "bit selection needs at least one bit".into(),
            });
        }
        if bits.len() > 30 {
            return Err(ConfigError::OutOfRange {
                what: "selected bits",
                expected: "<= 30".into(),
                got: bits.len() as u64,
            });
        }
        let mut sorted = bits.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != bits.len() {
            return Err(ConfigError::InvalidParameter {
                what: format!("duplicate bit positions in {bits:?}"),
            });
        }
        if let Some(&max) = sorted.last() {
            if max > 63 {
                return Err(ConfigError::OutOfRange {
                    what: "bit position",
                    expected: "<= 63".into(),
                    got: max as u64,
                });
            }
        }
        let sets = 1usize << bits.len();
        let name = format!("{scheme}{bits:?}");
        Ok(BitSelectIndex { bits, sets, name })
    }

    /// The selected bit positions, LSB of the index first.
    pub fn bits(&self) -> &[u32] {
        &self.bits
    }
}

impl IndexFunction for BitSelectIndex {
    #[inline]
    fn index_block(&self, block: BlockAddr) -> usize {
        let mut idx = 0usize;
        for (out_pos, &bit) in self.bits.iter().enumerate() {
            idx |= (((block >> bit) & 1) as usize) << out_pos;
        }
        idx
    }

    fn num_sets(&self) -> usize {
        self.sets
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn index_many(&self, blocks: &[BlockAddr], out: &mut [usize]) {
        // Bits outer, lanes inner: each pass over the 8 lanes does one
        // shift/mask/or, so the gather vectorizes even though the bit
        // positions themselves are data-dependent.
        SimdLanes::map(
            blocks,
            out,
            |b8, o8| {
                let mut acc = [0u64; SIMD_LANES];
                for (out_pos, &bit) in self.bits.iter().enumerate() {
                    for l in 0..SIMD_LANES {
                        acc[l] |= ((b8[l] >> bit) & 1) << out_pos;
                    }
                }
                for l in 0..SIMD_LANES {
                    o8[l] = acc[l] as usize;
                }
            },
            |b| self.index_block(b),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn selecting_low_bits_reproduces_modulo() {
        let f = BitSelectIndex::new(vec![0, 1, 2, 3]).unwrap();
        for block in 0..64u64 {
            assert_eq!(f.index_block(block), (block & 15) as usize);
        }
        assert_eq!(f.num_sets(), 16);
    }

    #[test]
    fn gathers_scattered_bits() {
        let f = BitSelectIndex::new(vec![1, 4, 9]).unwrap();
        // block with bits 1 and 9 set, bit 4 clear -> index 0b101
        let block = (1 << 1) | (1 << 9);
        assert_eq!(f.index_block(block), 0b101);
        assert_eq!(f.num_sets(), 8);
    }

    #[test]
    fn validation() {
        assert!(BitSelectIndex::new(vec![]).is_err());
        assert!(BitSelectIndex::new(vec![3, 3]).is_err());
        assert!(BitSelectIndex::new(vec![64]).is_err());
        assert!(BitSelectIndex::new((0..31).collect()).is_err());
        assert!(BitSelectIndex::new(vec![63]).is_ok());
    }

    #[test]
    fn name_carries_positions() {
        let f = BitSelectIndex::named(vec![2, 7], "givargis").unwrap();
        assert!(f.name().starts_with("givargis"));
        assert!(f.name().contains('7'));
        assert_eq!(f.bits(), &[2, 7]);
    }

    proptest! {
        #[test]
        fn always_in_range(
            block in proptest::num::u64::ANY,
            bits in proptest::collection::hash_set(0u32..40, 1..12)
        ) {
            let bits: Vec<u32> = bits.into_iter().collect();
            let f = BitSelectIndex::new(bits).unwrap();
            prop_assert!(f.index_block(block) < f.num_sets());
        }

        #[test]
        fn index_depends_only_on_selected_bits(
            block in proptest::num::u64::ANY,
            noise in proptest::num::u64::ANY
        ) {
            let f = BitSelectIndex::new(vec![0, 5, 12]).unwrap();
            let mask = (1u64) | (1 << 5) | (1 << 12);
            // Perturb only unselected bits: index must not change.
            let perturbed = (block & mask) | (noise & !mask);
            prop_assert_eq!(f.index_block(block & mask), f.index_block(perturbed));
        }
    }
}
