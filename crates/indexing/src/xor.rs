//! Exclusive-OR hashing (paper Section II.D, Eq. 5).
//!
//! `index = (t_i XOR I_i) mod s`, where `I_i` are the conventional index
//! bits and `t_i` is an equally wide slice of the tag. Two addresses that
//! collide under conventional indexing differ somewhere in the tag; XOR-ing
//! tag bits into the index separates them — at the risk of creating new
//! collisions elsewhere, which is why the paper finds XOR helps some
//! programs and hurts others.

use unicache_core::{
    is_pow2, log2, BlockAddr, ConfigError, IndexFunction, Result, SimdLanes, SIMD_LANES,
};

/// Tag-XOR-index hashing.
#[derive(Debug, Clone)]
pub struct XorIndex {
    sets: usize,
    index_bits: u32,
    mask: u64,
    /// How many bit positions above the index the tag slice starts
    /// (0 = the lowest tag bits, the classic choice).
    tag_skip: u32,
}

impl XorIndex {
    /// XOR of the conventional index with the lowest tag bits.
    pub fn new(sets: usize) -> Result<Self> {
        Self::with_tag_skip(sets, 0)
    }

    /// XOR with a tag slice starting `tag_skip` bits above the index field
    /// (an ablation knob: higher slices decorrelate differently).
    pub fn with_tag_skip(sets: usize, tag_skip: u32) -> Result<Self> {
        if !is_pow2(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "xor index sets",
                value: sets as u64,
            });
        }
        let index_bits = log2(sets as u64);
        Ok(XorIndex {
            sets,
            index_bits,
            mask: sets as u64 - 1,
            tag_skip,
        })
    }

    /// Number of index bits (`m` = log2 of the set count).
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// How many bit positions above the index field the XORed tag slice
    /// starts.
    pub fn tag_skip(&self) -> u32 {
        self.tag_skip
    }

    /// The hash as a GF(2) linear map: one row per output index bit, each
    /// row a mask over block-address bits whose parity gives that output
    /// bit. Here output bit `j` has exactly two taps —
    /// `block[j] XOR block[m + tag_skip + j]`. `uca check` runs Gaussian
    /// elimination over these rows to prove the map has full rank (so,
    /// restricted to any tag group, it permutes the sets) — the same
    /// analysis applied to real hardware in "Cracking Intel Sandy
    /// Bridge's Cache Hash Function".
    pub fn gf2_rows(&self) -> Vec<u64> {
        (0..self.index_bits)
            .map(|j| (1u64 << j) | (1u64 << (self.index_bits + self.tag_skip + j)))
            .collect()
    }
}

impl IndexFunction for XorIndex {
    #[inline]
    fn index_block(&self, block: BlockAddr) -> usize {
        let index = block & self.mask;
        let tag_slice = (block >> (self.index_bits + self.tag_skip)) & self.mask;
        (index ^ tag_slice) as usize
    }

    fn num_sets(&self) -> usize {
        self.sets
    }

    fn name(&self) -> &str {
        "xor"
    }

    fn index_many(&self, blocks: &[BlockAddr], out: &mut [usize]) {
        let mask = self.mask;
        let shift = self.index_bits + self.tag_skip;
        // (b & m) ^ ((b >> s) & m) == (b ^ (b >> s)) & m — AND distributes
        // over XOR, saving one mask per lane.
        SimdLanes::map(
            blocks,
            out,
            |b8, o8| {
                for l in 0..SIMD_LANES {
                    o8[l] = ((b8[l] ^ (b8[l] >> shift)) & mask) as usize;
                }
            },
            |b| self.index_block(b),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_tag_is_identity() {
        // Blocks below `sets` have an all-zero tag: XOR leaves the
        // conventional index untouched.
        let f = XorIndex::new(1024).unwrap();
        for b in [0u64, 1, 511, 1023] {
            assert_eq!(f.index_block(b), b as usize);
        }
    }

    #[test]
    fn conflicting_addresses_separate() {
        let f = XorIndex::new(1024).unwrap();
        // Same conventional index (0x155), different tags 1 and 2.
        let a = (1 << 10) | 0x155;
        let b = (2 << 10) | 0x155;
        assert_ne!(f.index_block(a), f.index_block(b));
        // Conventional indexing would have collided:
        assert_eq!(a & 1023, b & 1023);
    }

    #[test]
    fn tag_skip_changes_the_hash() {
        let f0 = XorIndex::new(256).unwrap();
        let f8 = XorIndex::with_tag_skip(256, 8).unwrap();
        // A block whose low tag slice is zero but higher slice is not.
        let block = (0xAB << 16) | 0x12;
        assert_eq!(f0.index_block(block), 0x12_usize);
        assert_ne!(f0.index_block(block), f8.index_block(block));
    }

    #[test]
    fn rejects_non_pow2() {
        assert!(XorIndex::new(100).is_err());
    }

    proptest! {
        #[test]
        fn always_in_range(block in proptest::num::u64::ANY, log_sets in 0u32..15) {
            let f = XorIndex::new(1usize << log_sets).unwrap();
            prop_assert!(f.index_block(block) < f.num_sets());
        }

        #[test]
        fn xor_is_a_permutation_within_a_tag_group(tag in 0u64..4096, log_sets in 1u32..12) {
            // For a fixed tag, index -> xor index is a bijection: all sets
            // remain reachable (no fragmentation, unlike prime-modulo).
            let sets = 1usize << log_sets;
            let f = XorIndex::new(sets).unwrap();
            let mut seen = vec![false; sets];
            for i in 0..sets as u64 {
                let block = (tag << log_sets) | i;
                let s = f.index_block(block);
                prop_assert!(!seen[s], "duplicate set {s}");
                seen[s] = true;
            }
        }
    }
}
