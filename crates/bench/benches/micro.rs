//! Hot-path microbenches: index-function hashing and per-model access
//! throughput. These quantify the *simulator* cost of each technique (the
//! hardware cost is the paper's Section V discussion; the simulation cost
//! determines how long `xp --scale large` runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use unicache_assoc::{AdaptiveGroupCache, BCache, ColumnAssociativeCache, PartnerIndexCache};
use unicache_bench::geom;
use unicache_core::{run_batch_many, BlockStream, CacheModel, IndexFunction, MemRecord};
use unicache_indexing::{
    GivargisIndex, ModuloIndex, OddMultiplierIndex, PrimeModuloIndex, XorIndex,
};
use unicache_sim::CacheBuilder;
use unicache_trace::synth;

fn index_functions(c: &mut Criterion) {
    let g = geom();
    let sets = g.num_sets();
    let blocks: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
    let train: Vec<u64> = blocks.clone();
    let fns: Vec<Arc<dyn IndexFunction>> = vec![
        Arc::new(ModuloIndex::new(sets).unwrap()),
        Arc::new(XorIndex::new(sets).unwrap()),
        Arc::new(OddMultiplierIndex::new(sets, 21).unwrap()),
        Arc::new(PrimeModuloIndex::new(sets).unwrap()),
        Arc::new(GivargisIndex::train(&train, g, 28).unwrap()),
    ];
    let mut grp = c.benchmark_group("index_fn_hash");
    grp.throughput(Throughput::Elements(blocks.len() as u64));
    for f in fns {
        grp.bench_with_input(
            BenchmarkId::from_parameter(f.name().to_string()),
            &f,
            |b, f| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &blk in &blocks {
                        acc ^= f.index_block(black_box(blk));
                    }
                    black_box(acc)
                })
            },
        );
    }
    grp.finish();
}

fn model_access(c: &mut Criterion) {
    let g = geom();
    let trace = synth::zipfian(3, 100_000, 0x10000, 4096, 32, 1.1);
    let mut models: Vec<Box<dyn CacheModel>> = vec![
        Box::new(CacheBuilder::new(g).name("direct_mapped").build().unwrap()),
        Box::new(ColumnAssociativeCache::new(g).unwrap()),
        Box::new(AdaptiveGroupCache::new(g).unwrap()),
        Box::new(BCache::new(g).unwrap()),
        Box::new(PartnerIndexCache::new(g).unwrap()),
    ];
    let mut grp = c.benchmark_group("model_access");
    grp.throughput(Throughput::Elements(trace.len() as u64));
    grp.sample_size(20);
    for model in &mut models {
        let name = model.name().to_string();
        grp.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                model.flush();
                model.run(black_box(trace.records()));
                black_box(model.stats().misses())
            })
        });
    }
    grp.finish();
}

/// Legacy per-record `run` vs the pre-decoded `run_batch` engine, on the
/// same trace and models — the per-record decode + dispatch overhead the
/// batched path removes.
fn batched_engine(c: &mut Criterion) {
    let g = geom();
    let trace = synth::zipfian(7, 100_000, 0x10000, 4096, 32, 1.1);
    let stream = BlockStream::from_records(trace.records(), g.line_bytes());
    let mut grp = c.benchmark_group("batched_engine");
    grp.throughput(Throughput::Elements(trace.len() as u64));
    grp.sample_size(20);

    let mut model = CacheBuilder::new(g).build().unwrap();
    grp.bench_function("legacy_run", |b| {
        b.iter(|| {
            model.flush();
            model.run(black_box(trace.records()));
            black_box(model.stats().misses())
        })
    });
    grp.bench_function("run_batch", |b| {
        b.iter(|| {
            model.flush();
            model.run_batch(black_box(&stream));
            black_box(model.stats().misses())
        })
    });

    // The SimStore driver shape: one decoded stream, a fleet of models.
    let mut fleet: Vec<Box<dyn CacheModel>> = vec![
        Box::new(CacheBuilder::new(g).name("direct_mapped").build().unwrap()),
        Box::new(ColumnAssociativeCache::new(g).unwrap()),
        Box::new(BCache::new(g).unwrap()),
        Box::new(PartnerIndexCache::new(g).unwrap()),
    ];
    grp.bench_function("run_batch_many_x4", |b| {
        b.iter(|| {
            let mut refs: Vec<&mut dyn CacheModel> = fleet
                .iter_mut()
                .map(|m| {
                    m.flush();
                    &mut **m as &mut dyn CacheModel
                })
                .collect();
            run_batch_many(&mut refs, black_box(&stream));
            black_box(fleet.iter().map(|m| m.stats().misses()).sum::<u64>())
        })
    });
    grp.finish();
}

fn trace_generation(c: &mut Criterion) {
    use unicache_workloads::{Scale, Workload};
    let mut grp = c.benchmark_group("trace_generation");
    grp.sample_size(10);
    for w in [Workload::Crc, Workload::Fft, Workload::Qsort] {
        grp.bench_function(BenchmarkId::from_parameter(w.name()), |b| {
            b.iter(|| black_box(w.generate(Scale::Tiny)))
        });
    }
    grp.finish();
}

fn access_single(c: &mut Criterion) {
    let g = geom();
    let mut cache = CacheBuilder::new(g).build().unwrap();
    let mut addr = 0u64;
    c.bench_function("single_cache_access", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(0x9E3779B97F4A7C15) & 0xF_FFFF;
            black_box(cache.access(MemRecord::read(addr)))
        })
    });
}

criterion_group!(
    micro,
    index_functions,
    model_access,
    batched_engine,
    trace_generation,
    access_single
);
criterion_main!(micro);
