//! End-to-end regeneration of every paper figure, timed with Criterion.
//!
//! Each benchmark runs the corresponding `unicache-experiments` runner at
//! `Scale::Tiny` (Criterion needs many iterations; `xp --scale small` is
//! the canonical results run) and prints the resulting table once, so
//! `cargo bench` output contains the reproduced numbers alongside the
//! timings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::sync::OnceLock;
use unicache_experiments::figures::{assoc, extras, fig1, hybrid, indexing, smt};
use unicache_experiments::{SimStore, TraceStore};
use unicache_workloads::{Scale, Workload};

/// Traces are generated once and shared; each bench iteration gets a
/// *fresh* result cache so the timing measures real simulation work, not
/// memoized-read speed.
fn traces() -> Arc<TraceStore> {
    static STORE: OnceLock<Arc<TraceStore>> = OnceLock::new();
    Arc::clone(STORE.get_or_init(|| {
        let s = TraceStore::new(Scale::Tiny);
        s.prefetch(&Workload::all());
        Arc::new(s)
    }))
}

fn store() -> SimStore {
    SimStore::with_traces(traces())
}

macro_rules! fig_bench {
    ($fn_name:ident, $id:literal, $runner:expr) => {
        fn $fn_name(c: &mut Criterion) {
            // Print the reproduced table once.
            let table = $runner(&store());
            eprintln!("{}", table.render());
            let mut g = c.benchmark_group("figures");
            g.sample_size(10);
            g.bench_function($id, |b| b.iter(|| black_box($runner(&store()))));
            g.finish();
        }
    };
}

fn bench_fig1(c: &mut Criterion) {
    let report = fig1::report(&store(), Workload::Fft);
    eprintln!("{}", report.render());
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig01_nonuniformity", |b| {
        b.iter(|| black_box(fig1::report(&store(), Workload::Fft)))
    });
    g.finish();
}

fig_bench!(bench_fig4, "fig04_indexing", indexing::fig4);
fig_bench!(bench_fig6, "fig06_assoc", assoc::fig6);
fig_bench!(bench_fig7, "fig07_amat", assoc::fig7);
fig_bench!(bench_fig8, "fig08_hybrid", hybrid::fig8);
fig_bench!(bench_fig9, "fig09_kurtosis_idx", indexing::fig9);
fig_bench!(bench_fig10, "fig10_skewness_idx", indexing::fig10);
fig_bench!(bench_fig11, "fig11_kurtosis_assoc", assoc::fig11);
fig_bench!(bench_fig12, "fig12_skewness_assoc", assoc::fig12);
fig_bench!(bench_fig13, "fig13_smt_multi_index", smt::fig13);
fig_bench!(bench_fig14, "fig14_adaptive_partitioned", smt::fig14);
fig_bench!(
    bench_classify,
    "classify_fhs_fms_las",
    extras::classification
);
fig_bench!(bench_belady, "belady_lower_bound", extras::belady_bound);

fn bench_patel(c: &mut Criterion) {
    let table = extras::patel(&store(), 5_000, 6);
    eprintln!("{}", table.render());
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("patel_bounded_search", |b| {
        b.iter(|| black_box(extras::patel(&store(), 5_000, 6)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig4,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_classify,
    bench_belady,
    bench_patel
);
criterion_main!(figures);
