//! Design-choice ablations called out in DESIGN.md. Each bench sweeps one
//! knob, prints the resulting miss rates (the scientific observable) and
//! times the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::sync::OnceLock;
use unicache_assoc::{AdaptiveConfig, AdaptiveGroupCache, BCache, BCacheConfig};
use unicache_bench::{geom, miss_rate, sweep_line};
use unicache_core::CacheGeometry;
use unicache_indexing::{GivargisIndex, OddMultiplierIndex, RECOMMENDED_MULTIPLIERS};
use unicache_sim::{CacheBuilder, ReplacementPolicy};
use unicache_trace::Trace;
use unicache_workloads::{Scale, Workload};

fn fft_trace() -> &'static Trace {
    static T: OnceLock<Trace> = OnceLock::new();
    T.get_or_init(|| Workload::Fft.generate(Scale::Small))
}

fn qsort_trace() -> &'static Trace {
    static T: OnceLock<Trace> = OnceLock::new();
    T.get_or_init(|| Workload::Qsort.generate(Scale::Small))
}

/// Replacement policy in a 4-way cache (paper uses LRU for L2/B-cache).
fn ablation_replacement(c: &mut Criterion) {
    let g = CacheGeometry::new(32 * 1024, 32, 4).unwrap();
    let trace = fft_trace();
    let policies = [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("Random", ReplacementPolicy::Random),
        ("TreePLRU", ReplacementPolicy::TreePlru),
    ];
    let results: Vec<(String, f64)> = policies
        .iter()
        .map(|(name, p)| {
            let mut cache = CacheBuilder::new(g).replacement(*p).build().unwrap();
            (name.to_string(), miss_rate(trace, &mut cache))
        })
        .collect();
    eprintln!(
        "{}",
        sweep_line("replacement policy (fft, 4-way)", &results)
    );
    c.bench_function("ablation_replacement", |b| {
        b.iter(|| {
            let mut cache = CacheBuilder::new(g)
                .replacement(ReplacementPolicy::Lru)
                .build()
                .unwrap();
            black_box(miss_rate(trace, &mut cache))
        })
    });
}

/// The odd-multiplier choice (paper recommends 9, 21, 31, 61).
fn ablation_multiplier(c: &mut Criterion) {
    let g = geom();
    let trace = fft_trace();
    let mut results = Vec::new();
    for &m in RECOMMENDED_MULTIPLIERS.iter().chain([7u64, 127].iter()) {
        let mut cache = CacheBuilder::new(g)
            .index(Arc::new(OddMultiplierIndex::new(g.num_sets(), m).unwrap()))
            .build()
            .unwrap();
        results.push((format!("p{m}"), miss_rate(trace, &mut cache)));
    }
    eprintln!("{}", sweep_line("odd multiplier (fft)", &results));
    c.bench_function("ablation_multiplier", |b| {
        b.iter(|| {
            let mut cache = CacheBuilder::new(g)
                .index(Arc::new(OddMultiplierIndex::new(g.num_sets(), 21).unwrap()))
                .build()
                .unwrap();
            black_box(miss_rate(trace, &mut cache))
        })
    });
}

/// SHT/OUT sizing of the adaptive cache (paper: 3/8 and 4/16).
fn ablation_adaptive_tables(c: &mut Criterion) {
    let g = geom();
    let trace = fft_trace();
    let sizes = [
        ("sht1/8,out1/8", 0.125, 0.125),
        ("sht3/8,out1/4", 0.375, 0.25), // paper configuration
        ("sht1/2,out1/2", 0.5, 0.5),
        ("sht1,out1", 1.0, 1.0),
    ];
    let results: Vec<(String, f64)> = sizes
        .iter()
        .map(|(name, sht, out)| {
            let cfg = AdaptiveConfig {
                sht_fraction: *sht,
                out_fraction: *out,
                relocation_window: 64,
            };
            let mut cache = AdaptiveGroupCache::with_config(g, cfg).unwrap();
            (name.to_string(), miss_rate(trace, &mut cache))
        })
        .collect();
    eprintln!("{}", sweep_line("adaptive SHT/OUT sizing (fft)", &results));
    c.bench_function("ablation_adaptive_tables", |b| {
        b.iter(|| {
            let mut cache = AdaptiveGroupCache::new(g).unwrap();
            black_box(miss_rate(trace, &mut cache))
        })
    });
}

/// B-cache mapping factor and associativity (paper: MF=2, BAS=8).
fn ablation_bcache_shape(c: &mut Criterion) {
    let g = geom();
    let trace = qsort_trace();
    let shapes = [(1u32, 2u32), (2, 2), (2, 4), (2, 8), (4, 8), (2, 16)];
    let results: Vec<(String, f64)> = shapes
        .iter()
        .map(|&(mf, bas)| {
            let mut cache = BCache::with_config(
                g,
                BCacheConfig {
                    mapping_factor: mf,
                    bas,
                },
            )
            .unwrap();
            (format!("MF{mf}/BAS{bas}"), miss_rate(trace, &mut cache))
        })
        .collect();
    eprintln!("{}", sweep_line("b-cache shape (qsort)", &results));
    c.bench_function("ablation_bcache_shape", |b| {
        b.iter(|| {
            let mut cache = BCache::new(g).unwrap();
            black_box(miss_rate(trace, &mut cache))
        })
    });
}

/// Givargis sensitivity to line size — the paper attributes its poor
/// showing at 32 B lines to byte-offset bits being excluded from the
/// candidate pool; smaller lines exclude fewer bits.
fn ablation_givargis_linesize(c: &mut Criterion) {
    let trace = fft_trace();
    let mut results = Vec::new();
    for line in [8u64, 16, 32, 64] {
        let g = CacheGeometry::new(32 * 1024, line, 1).unwrap();
        let unique = trace.unique_blocks(line);
        let idx = GivargisIndex::train(&unique, g, 28).unwrap();
        let mut givargis = CacheBuilder::new(g).index(Arc::new(idx)).build().unwrap();
        let mut base = CacheBuilder::new(g).build().unwrap();
        let gv = miss_rate(trace, &mut givargis);
        let bs = miss_rate(trace, &mut base);
        let red = if bs > 0.0 {
            100.0 * (bs - gv) / bs
        } else {
            0.0
        };
        results.push((format!("{line}B:reduction"), red / 100.0));
    }
    eprintln!(
        "{}",
        sweep_line("givargis % miss reduction by line size (fft)", &results)
    );
    c.bench_function("ablation_givargis_linesize", |b| {
        b.iter(|| {
            let g = CacheGeometry::new(32 * 1024, 32, 1).unwrap();
            let unique = trace.unique_blocks(32);
            black_box(GivargisIndex::train(&unique, g, 28).unwrap())
        })
    });
}

/// Partner-chain length (the paper's §1.2 "linked list" extension:
/// longer chains = more effective associativity for hot sets, more probe
/// cycles).
fn ablation_chain_length(c: &mut Criterion) {
    use unicache_assoc::{ChainConfig, PartnerChainCache};
    let g = geom();
    let trace = fft_trace();
    let mut results = Vec::new();
    for len in [1usize, 2, 3, 4, 6] {
        let cfg = ChainConfig {
            epoch: 8192,
            max_chains: 64,
            chain_len: len,
        };
        let mut cache = PartnerChainCache::with_config(g, cfg).unwrap();
        results.push((format!("len{len}"), miss_rate(trace, &mut cache)));
    }
    eprintln!("{}", sweep_line("partner-chain length (fft)", &results));
    c.bench_function("ablation_chain_length", |b| {
        b.iter(|| {
            let mut cache = PartnerChainCache::new(g).unwrap();
            black_box(miss_rate(trace, &mut cache))
        })
    });
}

criterion_group!(
    ablations,
    ablation_replacement,
    ablation_multiplier,
    ablation_adaptive_tables,
    ablation_bcache_shape,
    ablation_givargis_linesize,
    ablation_chain_length
);
criterion_main!(ablations);
