//! `perfgate` — the CI gate over `xp --timing-json` artifacts.
//!
//! ```text
//! perfgate compare <baseline.json> <current.json> [--max-regress F]
//!                  [--phase NAME]... [--out diff.json]
//! perfgate speedup <serial.json> <parallel.json> [--min F]
//! ```
//!
//! `compare` fails (exit 1) when the current run's aggregate records/sec
//! has regressed more than `--max-regress` (default 0.25) below the
//! baseline, or when any `--phase` (repeatable, e.g. `--phase coherent`)
//! grew its share of total wall-clock by more than the same limit, or —
//! when both artifacts carry per-phase `records_per_sec` — when a gated
//! phase's own throughput dropped by more than the limit;
//! `--out` writes the diff verdict as a JSON artifact either way.
//! `speedup` fails when wall-clock speedup of the parallel artifact
//! over the serial one is below `--min` (default 2.0). Logic and parsing
//! live in [`unicache_bench::gate`].

use std::process::ExitCode;
use unicache_bench::gate;

fn usage() -> ExitCode {
    eprintln!(
        "usage: perfgate compare <baseline.json> <current.json> [--max-regress F] \
         [--phase NAME]... [--out FILE]\n\
         \x20      perfgate speedup <serial.json> <parallel.json> [--min F]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("perfgate: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

fn parse_flag(args: &[String], flag: &str, default: f64) -> Result<f64, ExitCode> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
            Some(v) => Ok(v),
            None => Err(usage()),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(a), Some(b)) = (args.first(), args.get(1), args.get(2)) else {
        return usage();
    };
    match cmd.as_str() {
        "compare" => {
            let max_regress = match parse_flag(&args, "--max-regress", 0.25) {
                Ok(v) => v,
                Err(c) => return c,
            };
            let out = args
                .iter()
                .position(|x| x == "--out")
                .and_then(|i| args.get(i + 1));
            let phases: Vec<&str> = args
                .iter()
                .enumerate()
                .filter(|(_, x)| x.as_str() == "--phase")
                .filter_map(|(i, _)| args.get(i + 1).map(String::as_str))
                .collect();
            let (base, cur) = match (read(a), read(b)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(c), _) | (_, Err(c)) => return c,
            };
            let cmp = match gate::compare_with_phases(&base, &cur, max_regress, &phases) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("perfgate: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Some(path) = out {
                if let Err(e) = std::fs::write(path, cmp.to_json()) {
                    eprintln!("perfgate: cannot write {path}: {e}");
                }
            }
            for w in &cmp.warnings {
                eprintln!("perfgate: warning: {w}");
            }
            for p in &cmp.phases {
                let rps = if p.base_rps > 0.0 && p.cur_rps > 0.0 {
                    format!(
                        ", {:.0} -> {:.0} rec/s ({:+.1}%)",
                        p.base_rps,
                        p.cur_rps,
                        -100.0 * p.rps_regress
                    )
                } else {
                    String::new()
                };
                eprintln!(
                    "perfgate: phase '{}' share {:.1}% -> {:.1}% of wall-clock{rps}: {}",
                    p.name,
                    100.0 * p.base_share,
                    100.0 * p.cur_share,
                    if p.pass { "PASS" } else { "FAIL" }
                );
            }
            eprintln!(
                "perfgate: baseline {:.0} rec/s, current {:.0} rec/s, change {:+.1}% \
                 (limit -{:.0}%): {}",
                cmp.base_rps,
                cmp.cur_rps,
                -100.0 * cmp.regress,
                100.0 * cmp.max_regress,
                if cmp.pass { "PASS" } else { "FAIL" }
            );
            if cmp.pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        "speedup" => {
            let min = match parse_flag(&args, "--min", 2.0) {
                Ok(v) => v,
                Err(c) => return c,
            };
            let (serial, parallel) = match (read(a), read(b)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(c), _) | (_, Err(c)) => return c,
            };
            let s = match gate::speedup(&serial, &parallel) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("perfgate: {e}");
                    return ExitCode::from(2);
                }
            };
            let pass = s >= min;
            eprintln!(
                "perfgate: wall-clock speedup {s:.2}x (minimum {min:.2}x): {}",
                if pass { "PASS" } else { "FAIL" }
            );
            if pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        _ => usage(),
    }
}
