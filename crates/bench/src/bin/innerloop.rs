//! `innerloop` — criterion-free microbenchmark of the simulation inner
//! loop, isolating the two mechanisms behind the fused kernel's speedup:
//!
//! 1. **SoA vs per-set-struct storage** — the same `Cache` driven over
//!    the same stream with the contiguous struct-of-arrays set store
//!    (default) and with the legacy per-set `CacheSet` vector
//!    (`CacheBuilder::per_set_storage(true)`).
//! 2. **Fused vs unfused multi-model traversal** — the same lane group
//!    driven by `run_fused` (decode each chunk once, step every lane
//!    over it) and by `run_batch_many` (one virtual call per record per
//!    model).
//!
//! Emits a single JSON document on stdout (and optionally to `--out`)
//! so CI can archive the numbers as an artifact next to the perfgate
//! diff. Wall-clock goes through `unicache_timing::Stopwatch`, the one
//! sanctioned timing primitive (`uca lint`, rule `wallclock`).
//!
//! Usage: `innerloop [--records N] [--reps R] [--out FILE]`
//!
//! Timing methodology: each section runs `R` repetitions per variant,
//! interleaved (A, B, A, B, ...) so neither variant systematically
//! enjoys a warmer cache, and reports the *minimum* elapsed time — the
//! standard microbenchmark estimator for the noise-free cost.

use std::fmt::Write as _;
use std::sync::Arc;
use unicache_core::{
    run_batch_many, run_fused, BlockStream, CacheGeometry, CacheModel, FusedLane, MemRecord,
};
use unicache_indexing::XorIndex;
use unicache_sim::CacheBuilder;
use unicache_timing::Stopwatch;

/// Deterministic LCG access stream over a block space sized to overflow
/// the cache (conflicts and capacity misses, like real traces).
fn synth_records(count: usize) -> Vec<MemRecord> {
    let mut x = 0x243f6a8885a308d3u64;
    (0..count)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let block = (x >> 33) & 0xFFFF;
            let addr = block * 32;
            if x & 0x7 == 0 {
                MemRecord::write(addr)
            } else {
                MemRecord::read(addr)
            }
        })
        .collect()
}

/// Minimum elapsed nanoseconds over `reps` runs of `f`, interleaved with
/// the caller's other variant by taking a closure per call.
fn min_nanos(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.elapsed_nanos());
    }
    best
}

struct Args {
    records: usize,
    reps: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        records: 2_000_000,
        reps: 5,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match flag.as_str() {
            "--records" => args.records = grab("--records").parse().expect("--records: integer"),
            "--reps" => args.reps = grab("--reps").parse().expect("--reps: integer"),
            "--out" => args.out = Some(grab("--out")),
            other => panic!("unknown flag {other} (try --records/--reps/--out)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let records = synth_records(args.records);
    let geoms = [
        ("dm_1024x1", CacheGeometry::paper_l1()),
        (
            "sa_256x4",
            CacheGeometry::from_sets(256, 32, 4).expect("valid geometry"),
        ),
    ];

    let mut sections = String::new();

    // Section 1: SoA vs per-set-struct set storage.
    for (i, (label, geom)) in geoms.iter().enumerate() {
        let stream = BlockStream::from_records(&records, geom.line_bytes());
        let mut soa_best = u64::MAX;
        let mut per_set_best = u64::MAX;
        // Interleave the variants so neither owns the warm caches.
        for _ in 0..args.reps {
            let mut soa = CacheBuilder::new(*geom).build().expect("valid cache");
            soa_best = soa_best.min(min_nanos(1, || soa.run_batch(&stream)));
            let mut legacy = CacheBuilder::new(*geom)
                .per_set_storage(true)
                .build()
                .expect("valid cache");
            per_set_best = per_set_best.min(min_nanos(1, || legacy.run_batch(&stream)));
        }
        let _ = write!(
            sections,
            "    \"soa_vs_per_set/{label}\": {{\n      \"soa_ns\": {soa_best},\n      \
             \"per_set_ns\": {per_set_best},\n      \"speedup\": {:.4}\n    }},\n",
            per_set_best as f64 / soa_best as f64
        );
        let _ = i;
    }

    // Section 2: fused vs unfused traversal of a 4-lane group (the shape
    // SimStore schedules: baseline + an indexing scheme + two relocation
    // caches over one stream).
    let geom = CacheGeometry::paper_l1();
    let stream = BlockStream::from_records(&records, geom.line_bytes());
    let build_lanes = || -> Vec<Box<dyn FusedLane>> {
        vec![
            Box::new(CacheBuilder::new(geom).build().expect("valid cache")),
            Box::new(
                CacheBuilder::new(geom)
                    .index(Arc::new(
                        XorIndex::new(geom.num_sets()).expect("valid xor index"),
                    ))
                    .build()
                    .expect("valid cache"),
            ),
            Box::new(
                unicache_assoc::ColumnAssociativeCache::new(geom).expect("valid column cache"),
            ),
            Box::new(unicache_assoc::SkewedCache::new(geom).expect("valid skewed cache")),
        ]
    };
    let mut fused_best = u64::MAX;
    let mut unfused_best = u64::MAX;
    for _ in 0..args.reps {
        let mut lanes = build_lanes();
        let mut refs: Vec<&mut dyn FusedLane> = lanes
            .iter_mut()
            .map(|l| l.as_mut() as &mut dyn FusedLane)
            .collect();
        let sw = Stopwatch::start();
        run_fused(&mut refs, &stream);
        fused_best = fused_best.min(sw.elapsed_nanos());

        let mut models = build_lanes();
        let mut refs: Vec<&mut dyn CacheModel> = models
            .iter_mut()
            .map(|l| l.as_mut() as &mut dyn CacheModel)
            .collect();
        let sw = Stopwatch::start();
        run_batch_many(&mut refs, &stream);
        unfused_best = unfused_best.min(sw.elapsed_nanos());
    }
    let _ = write!(
        sections,
        "    \"fused_vs_unfused/4lanes\": {{\n      \"fused_ns\": {fused_best},\n      \
         \"unfused_ns\": {unfused_best},\n      \"speedup\": {:.4}\n    }}\n",
        unfused_best as f64 / fused_best as f64
    );

    let json = format!(
        "{{\n  \"records\": {},\n  \"reps\": {},\n  \"sections\": {{\n{sections}  }}\n}}\n",
        args.records, args.reps
    );
    print!("{json}");
    if let Some(path) = args.out {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}
