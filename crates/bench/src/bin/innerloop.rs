//! `innerloop` — criterion-free microbenchmark of the simulation inner
//! loop, isolating the two mechanisms behind the fused kernel's speedup:
//!
//! 1. **SoA vs per-set-struct storage** — the same `Cache` driven over
//!    the same stream with the contiguous struct-of-arrays set store
//!    (default) and with the legacy per-set `CacheSet` vector
//!    (`CacheBuilder::per_set_storage(true)`).
//! 2. **Fused vs unfused multi-model traversal** — the same lane group
//!    driven by `run_fused` (decode each chunk once, step every lane
//!    over it) and by `run_batch_many` (one virtual call per record per
//!    model).
//!
//! Emits a single JSON document on stdout (and optionally to `--out`)
//! so CI can archive the numbers as an artifact next to the perfgate
//! diff. Wall-clock goes through `unicache_timing::Stopwatch`, the one
//! sanctioned timing primitive (`uca lint`, rule `wallclock`).
//!
//! Since the SIMD tier (DESIGN §12) the report also carries:
//!
//! 3. **SIMD vs scalar fused traversal** — the same fused group with the
//!    `SimdLanes` ablation knob on and off.
//! 4. **Per-phase ns/record** for the direct-mapped fast path — index
//!    (`index_many` alone), classify (`classify_chunk` minus index) and
//!    update (full fused pass minus both) — so a perf regression
//!    localizes to a phase instead of one aggregate number.
//! 5. **A roofline** — records/sec against measured memory bandwidth
//!    (streaming-copy probe), placing the inner loop relative to the
//!    machine ceiling; `--roofline-out` writes it as its own artifact.
//!
//! Since the chunked coherent kernel (DESIGN §16) it also carries:
//!
//! 6. **Chunked vs per-record coherent traversal** — the same 4-core
//!    MESI hierarchy driven through `step_chunk` (batched index, private
//!    -line fast path) and record-at-a-time `access`, in ns/record, plus
//!    the fraction of accesses the fast path committed.
//!
//! Usage: `innerloop [--records N] [--reps R] [--block-mask HEX]
//!                   [--out FILE]
//!                   [--roofline-out FILE]`
//!
//! Timing methodology: each section runs `R` repetitions per variant,
//! interleaved (A, B, A, B, ...) so neither variant systematically
//! enjoys a warmer cache, and reports the *minimum* elapsed time — the
//! standard microbenchmark estimator for the noise-free cost.

use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use unicache_core::{
    run_batch_many, run_fused, BlockStream, CacheGeometry, CacheModel, CoherentModel, FusedLane,
    IndexFunction, MemRecord, SimdLanes, FUSE_CHUNK,
};
use unicache_hierarchy::{HierarchyBuilder, L2Mode};
use unicache_indexing::XorIndex;
use unicache_sim::CacheBuilder;
use unicache_timing::Stopwatch;

/// Deterministic LCG access stream over a block space of `block_mask +
/// 1` blocks. The default mask (0xFFFF) overflows the cache — conflicts
/// and capacity misses, like a cold trace; a small mask (e.g. 0x3FF on
/// the 1024-set L1) produces the hit-dominated steady state real
/// workloads spend most of their records in.
fn synth_records(count: usize, block_mask: u64) -> Vec<MemRecord> {
    let mut x = 0x243f6a8885a308d3u64;
    (0..count)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let block = (x >> 33) & block_mask;
            let addr = block * 32;
            if x & 0x7 == 0 {
                MemRecord::write(addr)
            } else {
                MemRecord::read(addr)
            }
        })
        .collect()
}

/// Minimum elapsed nanoseconds over `reps` runs of `f`, interleaved with
/// the caller's other variant by taking a closure per call.
fn min_nanos(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.elapsed_nanos());
    }
    best
}

/// Measured host memory bandwidth in GB/s: best-of-reps streaming copy
/// of a 32 MiB `u64` buffer (far beyond any host L2), counting both the
/// bytes read and the bytes written. This is the roofline ceiling the
/// simulation's stream throughput is compared against.
fn memory_bandwidth_gbps(reps: usize) -> f64 {
    const WORDS: usize = 4 << 20; // 32 MiB source + 32 MiB destination
    let src: Vec<u64> = (0..WORDS as u64).collect();
    let mut dst = vec![0u64; WORDS];
    dst.copy_from_slice(&src); // touch both buffers before timing
    let mut best = u64::MAX;
    for _ in 0..reps.max(3) {
        let sw = Stopwatch::start();
        dst.copy_from_slice(black_box(&src));
        black_box(&mut dst);
        best = best.min(sw.elapsed_nanos());
    }
    // 16 bytes move per word (8 in, 8 out); bytes/ns == GB/s.
    (WORDS * 16) as f64 / best.max(1) as f64
}

struct Args {
    records: usize,
    reps: usize,
    block_mask: u64,
    out: Option<String>,
    roofline_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        records: 2_000_000,
        reps: 5,
        block_mask: 0xFFFF,
        out: None,
        roofline_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match flag.as_str() {
            "--records" => args.records = grab("--records").parse().expect("--records: integer"),
            "--reps" => args.reps = grab("--reps").parse().expect("--reps: integer"),
            "--block-mask" => {
                let v = grab("--block-mask");
                let v = v.strip_prefix("0x").unwrap_or(&v);
                args.block_mask = u64::from_str_radix(v, 16).expect("--block-mask: hex integer");
            }
            "--out" => args.out = Some(grab("--out")),
            "--roofline-out" => args.roofline_out = Some(grab("--roofline-out")),
            other => panic!(
                "unknown flag {other} \
                 (try --records/--reps/--block-mask/--out/--roofline-out)"
            ),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let records = synth_records(args.records, args.block_mask);
    let geoms = [
        ("dm_1024x1", CacheGeometry::paper_l1()),
        (
            "sa_256x4",
            CacheGeometry::from_sets(256, 32, 4).expect("valid geometry"),
        ),
    ];

    let mut sections = String::new();

    // Section 1: SoA vs per-set-struct set storage.
    for (i, (label, geom)) in geoms.iter().enumerate() {
        let stream = BlockStream::from_records(&records, geom.line_bytes());
        let mut soa_best = u64::MAX;
        let mut per_set_best = u64::MAX;
        // Interleave the variants so neither owns the warm caches.
        for _ in 0..args.reps {
            let mut soa = CacheBuilder::new(*geom).build().expect("valid cache");
            soa_best = soa_best.min(min_nanos(1, || soa.run_batch(&stream)));
            let mut legacy = CacheBuilder::new(*geom)
                .per_set_storage(true)
                .build()
                .expect("valid cache");
            per_set_best = per_set_best.min(min_nanos(1, || legacy.run_batch(&stream)));
        }
        let _ = write!(
            sections,
            "    \"soa_vs_per_set/{label}\": {{\n      \"soa_ns\": {soa_best},\n      \
             \"per_set_ns\": {per_set_best},\n      \"speedup\": {:.4}\n    }},\n",
            per_set_best as f64 / soa_best as f64
        );
        let _ = i;
    }

    // Section 2: fused vs unfused traversal of a 4-lane group (the shape
    // SimStore schedules: baseline + an indexing scheme + two relocation
    // caches over one stream).
    let geom = CacheGeometry::paper_l1();
    let stream = BlockStream::from_records(&records, geom.line_bytes());
    let build_lanes = || -> Vec<Box<dyn FusedLane>> {
        vec![
            Box::new(CacheBuilder::new(geom).build().expect("valid cache")),
            Box::new(
                CacheBuilder::new(geom)
                    .index(Arc::new(
                        XorIndex::new(geom.num_sets()).expect("valid xor index"),
                    ))
                    .build()
                    .expect("valid cache"),
            ),
            Box::new(
                unicache_assoc::ColumnAssociativeCache::new(geom).expect("valid column cache"),
            ),
            Box::new(unicache_assoc::SkewedCache::new(geom).expect("valid skewed cache")),
        ]
    };
    let mut fused_best = u64::MAX;
    let mut unfused_best = u64::MAX;
    for _ in 0..args.reps {
        let mut lanes = build_lanes();
        let mut refs: Vec<&mut dyn FusedLane> = lanes
            .iter_mut()
            .map(|l| l.as_mut() as &mut dyn FusedLane)
            .collect();
        let sw = Stopwatch::start();
        run_fused(&mut refs, &stream);
        fused_best = fused_best.min(sw.elapsed_nanos());

        let mut models = build_lanes();
        let mut refs: Vec<&mut dyn CacheModel> = models
            .iter_mut()
            .map(|l| l.as_mut() as &mut dyn CacheModel)
            .collect();
        let sw = Stopwatch::start();
        run_batch_many(&mut refs, &stream);
        unfused_best = unfused_best.min(sw.elapsed_nanos());
    }
    let _ = write!(
        sections,
        "    \"fused_vs_unfused/4lanes\": {{\n      \"fused_ns\": {fused_best},\n      \
         \"unfused_ns\": {unfused_best},\n      \"speedup\": {:.4}\n    }},\n",
        unfused_best as f64 / fused_best as f64
    );

    // Section 3: the SIMD tier's contribution — the same fused 4-lane
    // group with the ablation knob on (8-wide kernels + batched
    // classify) and off (every scalar fallback). Both runs produce
    // byte-identical stats; only the clock may differ.
    let mut simd_best = u64::MAX;
    let mut scalar_best = u64::MAX;
    for _ in 0..args.reps {
        let mut lanes = build_lanes();
        let mut refs: Vec<&mut dyn FusedLane> = lanes
            .iter_mut()
            .map(|l| l.as_mut() as &mut dyn FusedLane)
            .collect();
        SimdLanes::set_enabled(true);
        let sw = Stopwatch::start();
        run_fused(&mut refs, &stream);
        simd_best = simd_best.min(sw.elapsed_nanos());

        let mut lanes = build_lanes();
        let mut refs: Vec<&mut dyn FusedLane> = lanes
            .iter_mut()
            .map(|l| l.as_mut() as &mut dyn FusedLane)
            .collect();
        SimdLanes::set_enabled(false);
        let sw = Stopwatch::start();
        run_fused(&mut refs, &stream);
        scalar_best = scalar_best.min(sw.elapsed_nanos());
        SimdLanes::set_enabled(true);
    }
    let _ = write!(
        sections,
        "    \"simd_vs_scalar/fused4\": {{\n      \"simd_ns\": {simd_best},\n      \
         \"scalar_ns\": {scalar_best},\n      \"speedup\": {:.4}\n    }},\n",
        scalar_best as f64 / simd_best as f64
    );

    // Section 4: chunked vs per-record traversal of the coherent
    // hierarchy (the `xp coherent` engine, DESIGN §16). The stream has
    // the locality shape of the sweep's real mixes — each core loops
    // over a private hot footprint (fast-path food), with a shared
    // region and a streaming tail mixed in so snoops, upgrades and
    // misses exercise the serial fallback. Both variants produce
    // byte-identical stats; only the clock and the fast/serial commit
    // split may differ.
    let coh_records: Vec<MemRecord> = synth_records(args.records, u64::MAX)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let tid = (i % 4) as u64;
            let block = if i % 13 == 0 {
                (r.addr >> 5) & 0x1F // shared front region: S-state traffic
            } else if i % 11 == 0 {
                0x1000 + ((r.addr >> 5) & 0x7FF) // streaming tail: misses
            } else {
                // Private per-core hot set, well inside a 128x2 L1.
                0x100 + tid * 0x100 + ((r.addr >> 5) & 0x7F)
            };
            MemRecord {
                addr: block * 32,
                ..r.with_tid(tid as u8)
            }
        })
        .collect();
    let l1 = CacheGeometry::from_sets(128, 32, 2).expect("valid L1 geometry");
    let l2 = CacheGeometry::from_sets(1024, 32, 4).expect("valid L2 geometry");
    let coh_index: Arc<dyn IndexFunction> =
        Arc::new(XorIndex::new(l1.num_sets()).expect("valid xor index"));
    let build_hier = |chunked: bool| {
        HierarchyBuilder::new(l1, Arc::clone(&coh_index))
            .cores(4)
            .victim_depth(4)
            .l2(L2Mode::Shared(l2))
            .chunked(chunked)
            .build()
            .expect("valid hierarchy")
    };
    let mut chunked_best = u64::MAX;
    let mut per_record_best = u64::MAX;
    let mut fast_fraction = 0.0;
    for _ in 0..args.reps {
        let mut fast = build_hier(true);
        let sw = Stopwatch::start();
        fast.run(&coh_records);
        chunked_best = chunked_best.min(sw.elapsed_nanos());
        fast_fraction = fast.fast_path_commits() as f64 / coh_records.len().max(1) as f64;

        let mut slow = build_hier(false);
        let sw = Stopwatch::start();
        slow.run(&coh_records);
        per_record_best = per_record_best.min(sw.elapsed_nanos());
    }
    let per_record = |ns: u64| ns as f64 / args.records as f64;
    let _ = write!(
        sections,
        "    \"coherent_chunk_vs_record/4c_v4\": {{\n      \
         \"chunked_ns_per_record\": {:.4},\n      \
         \"per_record_ns_per_record\": {:.4},\n      \"speedup\": {:.4},\n      \
         \"fast_path_fraction\": {fast_fraction:.4}\n    }},\n",
        per_record(chunked_best),
        per_record(per_record_best),
        per_record_best as f64 / chunked_best as f64
    );

    // Section 5: per-phase ns/record for the direct-mapped fast path.
    // index = `index_many` alone over 1024-record chunks; classify =
    // `classify_chunk` (index + batched tag compare, read-only) minus
    // index; update = a full fused pass minus both. Each phase regresses
    // independently, so an aggregate slowdown localizes here.
    let index: Arc<dyn IndexFunction> =
        Arc::new(XorIndex::new(geom.num_sets()).expect("valid xor index"));
    let blocks: Vec<u64> = records.iter().map(|r| geom.block_addr(r.addr)).collect();
    let mut sets = vec![0usize; FUSE_CHUNK];
    let index_ns = min_nanos(args.reps, || {
        for chunk in blocks.chunks(FUSE_CHUNK) {
            index.index_many(chunk, &mut sets);
            black_box(&sets);
        }
    });
    // Classify against a warmed cache so the hit/miss mix is realistic.
    let mut warmed = CacheBuilder::new(geom)
        .index(Arc::clone(&index))
        .build()
        .expect("valid cache");
    warmed.run_batch(&stream);
    let mut hits = vec![false; FUSE_CHUNK];
    let index_classify_ns = min_nanos(args.reps, || {
        for chunk in blocks.chunks(FUSE_CHUNK) {
            assert!(warmed.classify_chunk(chunk, &mut hits));
            black_box(&hits);
        }
    });
    let mut single_total_ns = u64::MAX;
    for _ in 0..args.reps {
        let mut lane = CacheBuilder::new(geom)
            .index(Arc::clone(&index))
            .build()
            .expect("valid cache");
        let sw = Stopwatch::start();
        run_fused(&mut [&mut lane as &mut dyn FusedLane], &stream);
        single_total_ns = single_total_ns.min(sw.elapsed_nanos());
    }
    let classify_ns = index_classify_ns.saturating_sub(index_ns);
    let update_ns = single_total_ns.saturating_sub(index_classify_ns);
    let per_record = |ns: u64| ns as f64 / args.records as f64;
    let _ = write!(
        sections,
        "    \"phases/dm_1024x1_xor\": {{\n      \"index_ns_per_record\": {:.4},\n      \
         \"classify_ns_per_record\": {:.4},\n      \"update_ns_per_record\": {:.4},\n      \
         \"total_ns_per_record\": {:.4}\n    }}\n",
        per_record(index_ns),
        per_record(classify_ns),
        per_record(update_ns),
        per_record(single_total_ns)
    );

    // Roofline: where the fused inner loop sits relative to the memory
    // ceiling. The packed stream costs 8 bytes per record; a 4-lane
    // fused pass reads it once for 4 simulated lane-records, so
    // `stream_gbps` is the *decode* traffic, while `lane_records_per_sec`
    // is the useful simulation throughput it buys.
    let mem_gbps = memory_bandwidth_gbps(args.reps);
    let lanes_in_group = 4.0;
    let lane_records_per_sec = args.records as f64 * lanes_in_group / (simd_best as f64 / 1e9);
    let stream_gbps = (args.records * 8) as f64 / simd_best as f64;
    let roofline = format!(
        "{{\n  \"mem_bandwidth_gbps\": {mem_gbps:.3},\n  \"stream_gbps\": {stream_gbps:.3},\n  \
         \"fraction_of_bandwidth\": {:.4},\n  \"lane_records_per_sec\": {lane_records_per_sec:.0},\n  \
         \"fused_lanes\": 4,\n  \"bytes_per_record\": 8,\n  \
         \"probe\": \"32MiB streaming copy, best of reps, read+write bytes\"\n}}\n",
        stream_gbps / mem_gbps
    );

    let json = format!(
        "{{\n  \"records\": {},\n  \"reps\": {},\n  \"sections\": {{\n{sections}  }},\n  \
         \"roofline\": {}\n}}\n",
        args.records,
        args.reps,
        roofline.trim_end()
    );
    print!("{json}");
    if let Some(path) = args.out {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
    if let Some(path) = args.roofline_out {
        std::fs::write(&path, &roofline).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}
