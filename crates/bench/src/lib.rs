//! # unicache-bench
//!
//! Criterion benchmark harness. Three suites (run with
//! `cargo bench --workspace`):
//!
//! * `figures` — regenerates every paper figure end-to-end (trace replay +
//!   analysis), timing the full pipeline and printing each figure's table
//!   once so a bench run doubles as a results run;
//! * `micro` — hot-path microbenches: each index function's hash, each
//!   cache organisation's access loop;
//! * `ablations` — the design-choice sweeps DESIGN.md calls out
//!   (replacement policy, odd multiplier, SHT/OUT sizing, B-cache shape,
//!   Givargis line-size sensitivity), printing the swept miss rates.
//!
//! Helpers here are shared by the three suites. The [`gate`] module (and
//! its `perfgate` binary) is the CI perf-regression gate comparing
//! `xp --timing-json` artifacts against the committed baseline.

pub mod gate;

use unicache_core::{CacheGeometry, CacheModel};
use unicache_trace::Trace;

/// The paper's L1 geometry.
pub fn geom() -> CacheGeometry {
    CacheGeometry::paper_l1()
}

/// Replays a trace and returns the model's miss rate.
pub fn miss_rate(trace: &Trace, model: &mut dyn CacheModel) -> f64 {
    model.flush();
    model.run(trace.records());
    model.stats().miss_rate()
}

/// Formats a labelled miss-rate sweep for printing from a bench setup.
pub fn sweep_line(label: &str, pairs: &[(String, f64)]) -> String {
    let cells: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}={:.3}%", 100.0 * v))
        .collect();
    format!("[ablation] {label}: {}", cells.join("  "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicache_sim::CacheBuilder;
    use unicache_trace::synth;

    #[test]
    fn helpers_work() {
        let t = synth::uniform(1, 2000, 0, 1 << 16);
        let mut c = CacheBuilder::new(geom()).build().unwrap();
        let r1 = miss_rate(&t, &mut c);
        let r2 = miss_rate(&t, &mut c);
        assert_eq!(r1, r2, "flush makes repeated measurement deterministic");
        let line = sweep_line("x", &[("a".into(), 0.5)]);
        assert!(line.contains("a=50.000%"));
    }
}
