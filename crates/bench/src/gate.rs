//! The CI perf gate: compares two `xp --timing-json` artifacts.
//!
//! `xp all --scale small --timing-json BENCH_small.json` writes a flat
//! report (total seconds, simulations run, records simulated, aggregate
//! records/sec, plus the executor's `parallel` section). CI keeps a
//! committed baseline (`BENCH_baseline.json`) and this module decides,
//! machine-to-machine noise notwithstanding, whether the current run has
//! regressed:
//!
//! * **throughput** — the gate metric is `records_per_sec` (normalised
//!   per-record cost, so it survives figure additions that change the
//!   total workload). A drop of more than `max_regress` (default 25%)
//!   fails the gate.
//! * **work drift** — `sims_run` / `records_simulated` differences are
//!   *reported* but never fail the gate: adding a figure legitimately
//!   grows the workload, and wall totals are not comparable across
//!   different work amounts.
//! * **phase share** — named phases (e.g. the `coherent` hierarchy
//!   sweep, gated by CI) are compared by their *share* of total
//!   wall-clock, which is machine-independent: a phase whose share grows
//!   by more than `max_regress` relative (and more than two points of
//!   total absolute, so microscopic phases can't trip the gate on noise)
//!   fails like a throughput regression does.
//! * **phase throughput** — when both artifacts carry a per-phase
//!   `records_per_sec` (newer `xp` builds emit it alongside `seconds`),
//!   the phase is additionally gated on normalised per-record cost, the
//!   same way the aggregate is. Older artifacts without the field fall
//!   back to share-only gating, so the gate stays usable across baseline
//!   generations.
//!
//! [`speedup`] serves the parallel-determinism CI job: given a `--jobs 1`
//! and a `--jobs N` artifact it returns the wall-clock ratio, gated at
//! ≥2x for N ≥ 4 on the small scale.
//!
//! Parsing is a hand-rolled key scan ([`json_f64`]) because the vendored
//! serde shim does not deserialize; the artifacts are machine-written
//! with known keys, so a scan is exact here.

/// The numeric value of `"key": <number>` in `src`, if present.
///
/// Scans for the quoted key and parses the number after the colon;
/// handles integer and decimal forms. Only suitable for flat,
/// machine-written JSON whose keys appear once (the timing artifacts) —
/// a nested duplicate key would match whichever comes first.
pub fn json_f64(src: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = src.find(&needle)? + needle.len();
    let rest = src[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Integer form of [`json_f64`] (counts like `sims_run`).
pub fn json_u64(src: &str, key: &str) -> Option<u64> {
    let v = json_f64(src, key)?;
    if v < 0.0 {
        return None;
    }
    Some(v as u64)
}

/// Wall-clock seconds of one named phase in a `--timing-json` artifact.
///
/// Matches the exact machine-written form `{"name": "X", "seconds": N}`
/// the `xp` binary emits — like [`json_f64`], a scan is exact here and
/// only here.
pub fn phase_seconds(src: &str, name: &str) -> Option<f64> {
    let needle = format!("{{\"name\": \"{name}\", \"seconds\": ");
    let at = src.find(&needle)? + needle.len();
    let rest = &src[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Records/sec of one named phase in a `--timing-json` artifact, when
/// present. Newer `xp` builds append `"records"` and
/// `"records_per_sec"` after `"seconds"` in each phase entry; older
/// artifacts (and phases that simulated no records) yield `None`, which
/// callers treat as "no phase-throughput data — share gate only".
pub fn phase_records_per_sec(src: &str, name: &str) -> Option<f64> {
    let needle = format!("{{\"name\": \"{name}\", \"seconds\": ");
    let at = src.find(&needle)?;
    let entry = &src[at..];
    let entry = &entry[..entry.find('}')?];
    json_f64(entry, "records_per_sec")
}

/// Verdict for one gated phase: its share of total wall-clock (and,
/// when both artifacts report it, its records/sec), baseline vs
/// current.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseVerdict {
    /// Phase (experiment) name.
    pub name: String,
    /// Baseline `phase seconds / total seconds`.
    pub base_share: f64,
    /// Current `phase seconds / total seconds`.
    pub cur_share: f64,
    /// Fractional share growth: positive = the phase got relatively
    /// slower.
    pub regress: f64,
    /// Baseline phase records/sec (0 when the artifact predates the
    /// field or the phase simulated no records).
    pub base_rps: f64,
    /// Current phase records/sec (0 under the same conditions).
    pub cur_rps: f64,
    /// Fractional phase-throughput drop: positive = regression. Zero
    /// when either artifact lacks a positive phase records/sec.
    pub rps_regress: f64,
    /// True when the share grew by no more than the limit (or by less
    /// than two absolute points of total) *and* phase throughput —
    /// when both sides report it — dropped by no more than the limit.
    pub pass: bool,
}

/// Outcome of a baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Baseline aggregate records/sec.
    pub base_rps: f64,
    /// Current aggregate records/sec.
    pub cur_rps: f64,
    /// Fractional throughput change: positive = regression (slower).
    pub regress: f64,
    /// Threshold the gate was evaluated against.
    pub max_regress: f64,
    /// Non-fatal observations (work-counter drift etc.).
    pub warnings: Vec<String>,
    /// Per-phase share verdicts for the phases the caller gated.
    pub phases: Vec<PhaseVerdict>,
    /// True when `regress <= max_regress` and every gated phase passed.
    pub pass: bool,
}

impl Comparison {
    /// The diff artifact CI uploads (hand-rolled JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"base_records_per_sec\": {:.0},\n  \"cur_records_per_sec\": {:.0},\n  \
             \"regress_fraction\": {:.6},\n  \"max_regress\": {:.6},\n  \"pass\": {},\n",
            self.base_rps, self.cur_rps, self.regress, self.max_regress, self.pass
        ));
        out.push_str("  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"base_share\": {:.6}, \"cur_share\": {:.6}, \
                 \"regress\": {:.6}, \"base_records_per_sec\": {:.0}, \
                 \"cur_records_per_sec\": {:.0}, \"rps_regress\": {:.6}, \"pass\": {}}}{comma}",
                p.name,
                p.base_share,
                p.cur_share,
                p.regress,
                p.base_rps,
                p.cur_rps,
                p.rps_regress,
                p.pass
            ));
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            let comma = if i + 1 < self.warnings.len() { "," } else { "" };
            out.push_str(&format!("\n    \"{}\"{comma}", w.replace('"', "'")));
        }
        if !self.warnings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Gates `current` against `baseline` (both `--timing-json` contents).
///
/// Returns `Err` when either artifact lacks the gate metric — a malformed
/// artifact must fail CI loudly, not pass vacuously.
pub fn compare(baseline: &str, current: &str, max_regress: f64) -> Result<Comparison, String> {
    compare_with_phases(baseline, current, max_regress, &[])
}

/// Minimum absolute share growth (of total wall-clock) before a phase
/// can fail the gate — keeps sub-percent phases from tripping on timer
/// noise.
const PHASE_SHARE_SLACK: f64 = 0.02;

/// [`compare`] plus per-phase share gating: each named phase's share of
/// total wall-clock may grow by at most `max_regress` relative (with
/// [`PHASE_SHARE_SLACK`] absolute slack). A gated phase missing from
/// either artifact is an error — the baseline must be regenerated when a
/// gated experiment is added.
pub fn compare_with_phases(
    baseline: &str,
    current: &str,
    max_regress: f64,
    gated_phases: &[&str],
) -> Result<Comparison, String> {
    let base_rps = json_f64(baseline, "records_per_sec")
        .ok_or_else(|| "baseline artifact lacks records_per_sec".to_string())?;
    let cur_rps = json_f64(current, "records_per_sec")
        .ok_or_else(|| "current artifact lacks records_per_sec".to_string())?;
    if base_rps <= 0.0 {
        return Err(format!("baseline records_per_sec not positive: {base_rps}"));
    }
    let regress = (base_rps - cur_rps) / base_rps;

    let mut phases = Vec::new();
    if !gated_phases.is_empty() {
        let base_total = json_f64(baseline, "total_seconds")
            .filter(|&t| t > 0.0)
            .ok_or_else(|| "baseline artifact lacks a positive total_seconds".to_string())?;
        let cur_total = json_f64(current, "total_seconds")
            .filter(|&t| t > 0.0)
            .ok_or_else(|| "current artifact lacks a positive total_seconds".to_string())?;
        for &name in gated_phases {
            let base_secs = phase_seconds(baseline, name)
                .ok_or_else(|| format!("baseline artifact lacks phase '{name}'"))?;
            let cur_secs = phase_seconds(current, name)
                .ok_or_else(|| format!("current artifact lacks phase '{name}'"))?;
            let base_share = base_secs / base_total;
            let cur_share = cur_secs / cur_total;
            let growth = cur_share - base_share;
            let phase_regress = if base_share > 0.0 {
                growth / base_share
            } else if cur_share > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            // Phase throughput gates only when both artifacts carry a
            // positive per-phase records/sec — older baselines predate
            // the field and must keep passing on share alone.
            let base_prps = phase_records_per_sec(baseline, name).unwrap_or(0.0);
            let cur_prps = phase_records_per_sec(current, name).unwrap_or(0.0);
            let rps_regress = if base_prps > 0.0 && cur_prps > 0.0 {
                (base_prps - cur_prps) / base_prps
            } else {
                0.0
            };
            let share_pass = phase_regress <= max_regress || growth <= PHASE_SHARE_SLACK;
            phases.push(PhaseVerdict {
                name: name.to_string(),
                base_share,
                cur_share,
                regress: phase_regress,
                base_rps: base_prps,
                cur_rps: cur_prps,
                rps_regress,
                pass: share_pass && rps_regress <= max_regress,
            });
        }
    }

    let mut warnings = Vec::new();
    for key in ["sims_run", "records_simulated"] {
        match (json_u64(baseline, key), json_u64(current, key)) {
            (Some(b), Some(c)) if b != c => {
                warnings.push(format!("work drift: {key} {b} -> {c} (informational)"));
            }
            (None, _) | (_, None) => warnings.push(format!("{key} missing from an artifact")),
            _ => {}
        }
    }

    let pass = regress <= max_regress && phases.iter().all(|p| p.pass);
    Ok(Comparison {
        base_rps,
        cur_rps,
        regress,
        max_regress,
        warnings,
        phases,
        pass,
    })
}

/// Wall-clock speedup of `parallel` over `serial` (both `--timing-json`
/// contents): serial total seconds divided by parallel total seconds.
pub fn speedup(serial: &str, parallel: &str) -> Result<f64, String> {
    let s = json_f64(serial, "total_seconds")
        .ok_or_else(|| "serial artifact lacks total_seconds".to_string())?;
    let p = json_f64(parallel, "total_seconds")
        .ok_or_else(|| "parallel artifact lacks total_seconds".to_string())?;
    if p <= 0.0 {
        return Err(format!("parallel total_seconds not positive: {p}"));
    }
    Ok(s / p)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "total_seconds": 10.000000,
  "sims_run": 100,
  "cache_hits": 5,
  "records_simulated": 1000000,
  "records_per_sec": 100000,
  "jobs": 1
}"#;

    fn artifact(rps: f64, total: f64) -> String {
        format!(
            "{{\n  \"total_seconds\": {total:.6},\n  \"sims_run\": 100,\n  \
             \"records_simulated\": 1000000,\n  \"records_per_sec\": {rps:.0}\n}}"
        )
    }

    #[test]
    fn key_scan_parses_ints_and_decimals() {
        assert_eq!(json_f64(BASE, "total_seconds"), Some(10.0));
        assert_eq!(json_u64(BASE, "sims_run"), Some(100));
        assert_eq!(json_f64(BASE, "records_per_sec"), Some(100000.0));
        assert_eq!(json_f64(BASE, "absent"), None);
    }

    #[test]
    fn small_slowdown_passes_large_fails() {
        let ok = compare(BASE, &artifact(90000.0, 11.0), 0.25).unwrap();
        assert!(ok.pass, "10% slower is inside the 25% band: {ok:?}");
        let bad = compare(BASE, &artifact(50000.0, 20.0), 0.25).unwrap();
        assert!(!bad.pass, "50% slower must fail: {bad:?}");
        assert!((bad.regress - 0.5).abs() < 1e-9);
    }

    #[test]
    fn speedups_never_fail_the_gate() {
        let c = compare(BASE, &artifact(400000.0, 2.5), 0.25).unwrap();
        assert!(c.pass);
        assert!(c.regress < 0.0, "negative regress = faster");
    }

    #[test]
    fn work_drift_warns_but_does_not_fail() {
        let drifted = BASE.replace("\"sims_run\": 100", "\"sims_run\": 120");
        let c = compare(BASE, &drifted, 0.25).unwrap();
        assert!(c.pass);
        assert_eq!(c.warnings.len(), 1);
        assert!(c.warnings[0].contains("sims_run 100 -> 120"));
    }

    #[test]
    fn malformed_artifacts_error_loudly() {
        assert!(compare("{}", BASE, 0.25).is_err());
        assert!(compare(BASE, "{}", 0.25).is_err());
        assert!(speedup("{}", BASE).is_err());
    }

    #[test]
    fn speedup_is_serial_over_parallel() {
        let serial = artifact(100000.0, 8.0);
        let parallel = artifact(100000.0, 2.0);
        let s = speedup(&serial, &parallel).unwrap();
        assert!((s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn diff_json_roundtrips_the_verdict() {
        let c = compare(BASE, &artifact(50000.0, 20.0), 0.25).unwrap();
        let j = c.to_json();
        assert!(j.contains("\"pass\": false"));
        assert_eq!(json_f64(&j, "regress_fraction"), Some(0.5));
    }

    /// Artifact in the exact shape `xp --timing-json` writes, with a
    /// two-entry phase list carrying the per-phase throughput fields.
    fn phased(rps: f64, total: f64, coherent_secs: f64) -> String {
        phased_rps(rps, total, coherent_secs, 200000.0)
    }

    /// [`phased`] with an explicit coherent-phase records/sec.
    fn phased_rps(rps: f64, total: f64, coherent_secs: f64, coherent_rps: f64) -> String {
        format!(
            "{{\n  \"phases\": [\n    {{\"name\": \"fig4\", \"seconds\": 1.000000, \
             \"records\": 500000, \"records_per_sec\": 500000}},\n    \
             {{\"name\": \"coherent\", \"seconds\": {coherent_secs:.6}, \
             \"records\": 500000, \"records_per_sec\": {coherent_rps:.0}}}\n  ],\n  \
             \"total_seconds\": {total:.6},\n  \"sims_run\": 100,\n  \
             \"records_simulated\": 1000000,\n  \"records_per_sec\": {rps:.0}\n}}"
        )
    }

    /// Artifact in the *old* phase shape (no per-phase records/sec) —
    /// the backwards-compat case the rps gate must not break on.
    fn phased_legacy(rps: f64, total: f64, coherent_secs: f64) -> String {
        format!(
            "{{\n  \"phases\": [\n    {{\"name\": \"fig4\", \"seconds\": 1.000000}},\n    \
             {{\"name\": \"coherent\", \"seconds\": {coherent_secs:.6}}}\n  ],\n  \
             \"total_seconds\": {total:.6},\n  \"sims_run\": 100,\n  \
             \"records_simulated\": 1000000,\n  \"records_per_sec\": {rps:.0}\n}}"
        )
    }

    #[test]
    fn phase_seconds_scans_the_named_entry() {
        let a = phased(100000.0, 10.0, 2.5);
        assert_eq!(phase_seconds(&a, "fig4"), Some(1.0));
        assert_eq!(phase_seconds(&a, "coherent"), Some(2.5));
        assert_eq!(phase_seconds(&a, "absent"), None);
    }

    #[test]
    fn phase_share_growth_fails_the_gate() {
        let base = phased(100000.0, 10.0, 2.0);
        // Same throughput, but coherent ballooned from 20% to 60% of wall.
        let bad = phased(100000.0, 10.0, 6.0);
        let c = compare_with_phases(&base, &bad, 0.25, &["coherent"]).unwrap();
        assert!(!c.pass, "{c:?}");
        assert_eq!(c.phases.len(), 1);
        assert!(!c.phases[0].pass);
        assert!((c.phases[0].regress - 2.0).abs() < 1e-9);
        // Within-band growth passes.
        let ok =
            compare_with_phases(&base, &phased(100000.0, 10.0, 2.2), 0.25, &["coherent"]).unwrap();
        assert!(ok.pass, "{ok:?}");
    }

    #[test]
    fn tiny_phase_noise_is_absorbed_by_absolute_slack() {
        // 0.1% -> 0.3% of wall is a 3x relative jump but far below the
        // two-point absolute slack.
        let base = phased(100000.0, 10.0, 0.01);
        let cur = phased(100000.0, 10.0, 0.03);
        let c = compare_with_phases(&base, &cur, 0.25, &["coherent"]).unwrap();
        assert!(c.pass, "{c:?}");
    }

    #[test]
    fn phase_records_per_sec_scans_the_named_entry() {
        let a = phased_rps(100000.0, 10.0, 2.0, 250000.0);
        assert_eq!(phase_records_per_sec(&a, "fig4"), Some(500000.0));
        assert_eq!(phase_records_per_sec(&a, "coherent"), Some(250000.0));
        assert_eq!(phase_records_per_sec(&a, "absent"), None);
        let legacy = phased_legacy(100000.0, 10.0, 2.0);
        assert_eq!(phase_records_per_sec(&legacy, "coherent"), None);
    }

    #[test]
    fn phase_throughput_drop_fails_even_at_constant_share() {
        // Coherent keeps its 20% share (total shrank with it), but its
        // records/sec halved — the share gate alone would miss this.
        let base = phased_rps(100000.0, 10.0, 2.0, 400000.0);
        let bad = phased_rps(100000.0, 5.0, 1.0, 200000.0);
        let c = compare_with_phases(&base, &bad, 0.25, &["coherent"]).unwrap();
        assert!(!c.pass, "{c:?}");
        assert!(!c.phases[0].pass);
        assert!((c.phases[0].rps_regress - 0.5).abs() < 1e-9);
        // Same shape inside the band passes.
        let ok = phased_rps(100000.0, 10.0, 2.0, 360000.0);
        let c = compare_with_phases(&base, &ok, 0.25, &["coherent"]).unwrap();
        assert!(c.pass, "{c:?}");
        assert!(c.phases[0].rps_regress > 0.0);
    }

    #[test]
    fn legacy_artifacts_without_phase_rps_gate_on_share_only() {
        let base = phased_legacy(100000.0, 10.0, 2.0);
        let cur = phased_rps(100000.0, 10.0, 2.2, 50000.0);
        // Baseline has no phase rps, so a slow-looking current phase
        // rps cannot fail the gate; share growth is inside the band.
        let c = compare_with_phases(&base, &cur, 0.25, &["coherent"]).unwrap();
        assert!(c.pass, "{c:?}");
        assert_eq!(c.phases[0].rps_regress, 0.0);
        assert_eq!(c.phases[0].base_rps, 0.0);
    }

    #[test]
    fn gated_phase_missing_from_baseline_errors() {
        let cur = phased(100000.0, 10.0, 2.0);
        assert!(compare_with_phases(BASE, &cur, 0.25, &["coherent"]).is_err());
        assert!(compare_with_phases(&cur, &cur, 0.25, &["absent"]).is_err());
    }

    #[test]
    fn phase_verdicts_round_trip_through_json() {
        let base = phased(100000.0, 10.0, 2.0);
        let c =
            compare_with_phases(&base, &phased(100000.0, 10.0, 6.0), 0.25, &["coherent"]).unwrap();
        let j = c.to_json();
        assert!(j.contains("\"name\": \"coherent\""));
        assert!(j.contains("\"cur_share\": 0.600000"));
        assert!(j.contains("\"rps_regress\": 0.000000"));
    }
}
