//! Per-thread counter/histogram shards behind the global recording API.
//!
//! With the parallel executor fanning simulations across worker threads,
//! a single global `[AtomicU64; Event::COUNT]` array would make every
//! hot-path `count()` a cross-core cache-line fight. Instead each thread
//! records into its **own shard** — an atomic mirror of
//! [`CounterSet`]/[`Histogram`] it alone writes — and readers merge all
//! shards on demand.
//!
//! Lifecycle:
//!
//! * **registration** — a thread's first recording call allocates its
//!   shard and registers it in the global [`REGISTRY`];
//! * **drain** — when the thread exits, a thread-local destructor folds
//!   the shard's totals into the registry's `drained` accumulators and
//!   drops the live entry, so totals survive worker churn and the
//!   registry stays bounded by the number of *live* threads;
//! * **read** — [`merged_counters`]/[`merged_hist`] fold `drained` with
//!   every live shard using the plain [`CounterSet::merge`] /
//!   [`Histogram::merge`] algebra. Those merges are associative and
//!   commutative (property-tested in `tests/obs_props.rs` and
//!   `tests/parallel_equivalence.rs`), so the fold order — registration
//!   order, which *is* scheduling-dependent — can never change a total.
//!
//! The shard slots are still (relaxed) atomics, not plain cells, because
//! a snapshot may race a live writer; each slot is only ever *written*
//! by its owning thread, so the relaxed loads see a value that is exact
//! for every quiesced thread and monotonically catching-up for running
//! ones. `xp` snapshots only after all workers have joined.

use crate::counter::CounterSet;
use crate::event::{Event, HistEvent};
use crate::hist::{bucket_index, Histogram, BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One thread's private sink: an atomic mirror of the plain algebra.
pub(crate) struct Shard {
    counters: [AtomicU64; Event::COUNT],
    hists: [[AtomicU64; BUCKETS]; HistEvent::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: [const { AtomicU64::new(0) }; Event::COUNT],
            hists: [const { [const { AtomicU64::new(0) }; BUCKETS] }; HistEvent::COUNT],
        }
    }

    #[inline(always)]
    fn add(&self, e: Event, n: u64) {
        self.counters[e.index()].fetch_add(n, Ordering::Relaxed);
    }

    #[inline(always)]
    fn observe(&self, h: HistEvent, v: u64) {
        self.hists[h.index()][bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn zero(&self) {
        for c in self.counters.iter() {
            c.store(0, Ordering::Relaxed);
        }
        for series in self.hists.iter() {
            for b in series.iter() {
                b.store(0, Ordering::Relaxed);
            }
        }
    }

    /// The shard's counters as the plain merge algebra.
    fn counter_set(&self) -> CounterSet {
        let mut out = CounterSet::new();
        for &e in Event::ALL.iter() {
            out.add(e, self.counters[e.index()].load(Ordering::Relaxed));
        }
        out
    }

    /// One histogram series as the plain merge algebra.
    fn histogram(&self, h: HistEvent) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        for (slot, a) in buckets.iter_mut().zip(self.hists[h.index()].iter()) {
            *slot = a.load(Ordering::Relaxed);
        }
        Histogram::from_buckets(buckets)
    }
}

/// Live shards plus the drained totals of exited threads.
struct Registry {
    live: Vec<Arc<Shard>>,
    drained_counters: CounterSet,
    drained_hists: [Histogram; HistEvent::COUNT],
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    live: Vec::new(),
    drained_counters: CounterSet::new(),
    drained_hists: [const { Histogram::new() }; HistEvent::COUNT],
});

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

/// Owns a thread's registration; draining happens on drop (thread exit).
struct ShardHandle(Arc<Shard>);

impl ShardHandle {
    fn register() -> Self {
        let shard = Arc::new(Shard::new());
        registry().live.push(Arc::clone(&shard));
        ShardHandle(shard)
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        let mut reg = registry();
        reg.drained_counters = reg.drained_counters.merge(&self.0.counter_set());
        for (i, &h) in HistEvent::ALL.iter().enumerate() {
            reg.drained_hists[i] = reg.drained_hists[i].merge(&self.0.histogram(h));
        }
        let own = &self.0;
        reg.live.retain(|s| !Arc::ptr_eq(s, own));
    }
}

std::thread_local! {
    static LOCAL: ShardHandle = ShardHandle::register();
}

/// Adds `n` to this thread's shard (registering it on first use). During
/// thread-local destruction — when the shard may already be gone — the
/// amount goes straight to the drained accumulator instead.
#[inline(always)]
pub(crate) fn add(e: Event, n: u64) {
    if LOCAL.try_with(|h| h.0.add(e, n)).is_err() {
        registry().drained_counters.add(e, n);
    }
}

/// Records one histogram sample in this thread's shard (same fallback as
/// [`add`]).
#[inline(always)]
pub(crate) fn observe(h: HistEvent, v: u64) {
    if LOCAL.try_with(|handle| handle.0.observe(h, v)).is_err() {
        registry().drained_hists[h.index()].observe(v);
    }
}

/// Every shard (drained + live) folded with the commutative counter
/// merge.
pub(crate) fn merged_counters() -> CounterSet {
    let reg = registry();
    reg.live
        .iter()
        .fold(reg.drained_counters, |acc, s| acc.merge(&s.counter_set()))
}

/// Every shard (drained + live) of one histogram series, folded with the
/// commutative histogram merge.
pub(crate) fn merged_hist(h: HistEvent) -> Histogram {
    let reg = registry();
    reg.live
        .iter()
        .fold(reg.drained_hists[h.index()].clone(), |acc, s| {
            acc.merge(&s.histogram(h))
        })
}

/// Number of currently registered (live) shards — observability for the
/// stress tests.
pub(crate) fn live_shards() -> usize {
    registry().live.len()
}

/// Zeroes the drained totals and every live shard (test isolation).
///
/// Only sound while no *other* thread is concurrently recording — the
/// same contract the previous single-array implementation had.
pub(crate) fn reset() {
    let mut reg = registry();
    reg.drained_counters = CounterSet::new();
    for h in reg.drained_hists.iter_mut() {
        *h = Histogram::new();
    }
    for s in reg.live.iter() {
        s.zero();
    }
}
