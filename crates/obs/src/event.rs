//! The closed registries of countable events and histogram series.
//!
//! Every mechanism counter the simulators emit is declared here, in one
//! flat enum, so the storage for *all* counters is a fixed-size array —
//! no allocation, no hashing, no locks on the hot path — and a snapshot
//! can enumerate every counter without consulting the emitting crates.

/// One countable hot-path event.
///
/// Naming convention: `<scheme>.<mechanism>` (the dotted form returned by
/// [`Event::name`] is the stable key used in `--metrics-json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Column-associative: first-probe lookup (one per access).
    ColumnProbe,
    /// Column-associative: second probe of the alternate ("column") set.
    ColumnSecondProbe,
    /// Column-associative: secondary hit swapped the pair of lines.
    ColumnSwap,
    /// Column-associative: rehashed resident reclaimed by its
    /// conventional owner without a second probe.
    ColumnReclaim,
    /// Column-associative: miss in both sets displaced the primary
    /// resident into the alternate set (rehash bit set).
    ColumnDisplace,
    /// Partner-index: primary-set lookup (one per access).
    PartnerProbe,
    /// Partner-index: probe of the linked partner set.
    PartnerSecondProbe,
    /// Partner-index: displaced primary resident lent (spilled) into the
    /// partner set.
    PartnerLend,
    /// Partner-index: epoch boundary re-ran the hot/cold pairing.
    PartnerRepartner,
    /// Partner-index: hot/cold links formed across all repartnerings.
    PartnerPairFormed,
    /// B-cache: cluster lookup (one per access).
    BcacheProbe,
    /// B-cache: programmable-decoder line comparisons performed.
    BcacheLineCompare,
    /// B-cache: a miss fill reprogrammed a line's decoder.
    BcacheDecoderReprogram,
    /// Adaptive group-associative: primary-set lookup (one per access).
    AdaptiveProbe,
    /// Adaptive group-associative: miss whose victim the SHT marked
    /// non-disposable (the set-reference history protected it).
    AdaptiveShtHit,
    /// Adaptive group-associative: hit served through the OUT directory.
    AdaptiveOutHit,
    /// Adaptive group-associative: stale OUT entry discarded on probe.
    AdaptiveOutStale,
    /// Adaptive group-associative: block moved out of (or back into) its
    /// primary position.
    AdaptiveRelocation,
    /// Skewed cache: dual-bank lookup (one per access).
    SkewedProbe,
    /// Conventional set-associative cache: lookup (one per access).
    CacheProbe,
    /// Belady MIN: clairvoyant eviction performed.
    BeladyEvict,
    /// Hierarchy: L1 primary hit.
    HierL1Hit,
    /// Hierarchy: L1 secondary (second-probe / OUT-directory) hit.
    HierL1SecondaryHit,
    /// Hierarchy: demand fetch issued to the L2.
    HierL2Access,
    /// Hierarchy: demand fetch hit in the L2.
    HierL2Hit,
    /// Hierarchy: demand fetch missed the L2 and paid the memory latency.
    HierMemoryAccess,
    /// Hierarchy: dirty L1 victim written back into the L2.
    HierWriteback,
    /// Fused kernel: one multi-lane pass over a decoded block stream
    /// (the per-scheme probe counters above still attribute each access
    /// to its own scheme inside the pass).
    FusedPass,
    /// Coherent hierarchy: BusRd transaction (read miss broadcast).
    CohBusRead,
    /// Coherent hierarchy: BusRdX transaction (write miss broadcast).
    CohBusReadX,
    /// Coherent hierarchy: BusUpgr transaction (S -> M without data).
    CohBusUpgrade,
    /// Coherent hierarchy: a remote copy (L1 or victim buffer) was
    /// invalidated by a snoop.
    CohInvalidation,
    /// Coherent hierarchy: a modified owner supplied the data for a
    /// remote miss (cache-to-cache intervention).
    CohIntervention,
    /// Coherent hierarchy: a modified line was written back downstream
    /// (snoop flush, victim-buffer spill, or back-invalidation flush).
    CohWriteback,
    /// Coherent hierarchy: an L2 eviction back-invalidated private
    /// copies to preserve inclusion.
    CohBackInvalidation,
    /// Coherent hierarchy: an L1 miss was rescued by the core's own
    /// victim buffer (no bus transaction).
    CohVictimHit,
    /// Chunked coherent kernel: one fused multi-hierarchy pass over a
    /// raw record trace (the coherent counterpart of `FusedPass`) —
    /// emitted once per fuse-group with pending work, independent of
    /// the `--no-coherent-chunk` knob, so metrics stay byte-identical
    /// across the ablation.
    CohFusedPass,
    /// Analytical model: one-pass workload summary computed (shared by
    /// the model, Givargis training and characterization stats).
    ModelSummaryBuild,
    /// Analytical model: closed-form prediction produced for one
    /// (scheme, geometry, workload) combination.
    ModelPredict,
    /// Analytical model: a scheme without a closed form reported
    /// `Unsupported` (never a guessed prediction).
    ModelUnsupported,
}

impl Event {
    /// Number of declared events (the counter-array length).
    pub const COUNT: usize = 40;

    /// Every event, in declaration order.
    pub const ALL: [Event; Event::COUNT] = [
        Event::ColumnProbe,
        Event::ColumnSecondProbe,
        Event::ColumnSwap,
        Event::ColumnReclaim,
        Event::ColumnDisplace,
        Event::PartnerProbe,
        Event::PartnerSecondProbe,
        Event::PartnerLend,
        Event::PartnerRepartner,
        Event::PartnerPairFormed,
        Event::BcacheProbe,
        Event::BcacheLineCompare,
        Event::BcacheDecoderReprogram,
        Event::AdaptiveProbe,
        Event::AdaptiveShtHit,
        Event::AdaptiveOutHit,
        Event::AdaptiveOutStale,
        Event::AdaptiveRelocation,
        Event::SkewedProbe,
        Event::CacheProbe,
        Event::BeladyEvict,
        Event::HierL1Hit,
        Event::HierL1SecondaryHit,
        Event::HierL2Access,
        Event::HierL2Hit,
        Event::HierMemoryAccess,
        Event::HierWriteback,
        Event::FusedPass,
        Event::CohBusRead,
        Event::CohBusReadX,
        Event::CohBusUpgrade,
        Event::CohInvalidation,
        Event::CohIntervention,
        Event::CohWriteback,
        Event::CohBackInvalidation,
        Event::CohVictimHit,
        Event::CohFusedPass,
        Event::ModelSummaryBuild,
        Event::ModelPredict,
        Event::ModelUnsupported,
    ];

    /// Position in the counter array.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable dotted name used as the metrics-JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Event::ColumnProbe => "column.probe",
            Event::ColumnSecondProbe => "column.second_probe",
            Event::ColumnSwap => "column.swap",
            Event::ColumnReclaim => "column.reclaim",
            Event::ColumnDisplace => "column.displace",
            Event::PartnerProbe => "partner.probe",
            Event::PartnerSecondProbe => "partner.second_probe",
            Event::PartnerLend => "partner.lend",
            Event::PartnerRepartner => "partner.repartner",
            Event::PartnerPairFormed => "partner.pair_formed",
            Event::BcacheProbe => "bcache.probe",
            Event::BcacheLineCompare => "bcache.line_compare",
            Event::BcacheDecoderReprogram => "bcache.decoder_reprogram",
            Event::AdaptiveProbe => "adaptive.probe",
            Event::AdaptiveShtHit => "adaptive.sht_hit",
            Event::AdaptiveOutHit => "adaptive.out_hit",
            Event::AdaptiveOutStale => "adaptive.out_stale",
            Event::AdaptiveRelocation => "adaptive.relocation",
            Event::SkewedProbe => "skewed.probe",
            Event::CacheProbe => "cache.probe",
            Event::BeladyEvict => "belady.evict",
            Event::HierL1Hit => "hier.l1_hit",
            Event::HierL1SecondaryHit => "hier.l1_secondary_hit",
            Event::HierL2Access => "hier.l2_access",
            Event::HierL2Hit => "hier.l2_hit",
            Event::HierMemoryAccess => "hier.memory_access",
            Event::HierWriteback => "hier.writeback",
            Event::FusedPass => "fused.pass",
            Event::CohBusRead => "coh.bus_read",
            Event::CohBusReadX => "coh.bus_readx",
            Event::CohBusUpgrade => "coh.bus_upgrade",
            Event::CohInvalidation => "coh.invalidation",
            Event::CohIntervention => "coh.intervention",
            Event::CohWriteback => "coh.writeback",
            Event::CohBackInvalidation => "coh.back_invalidation",
            Event::CohVictimHit => "coh.victim_hit",
            Event::CohFusedPass => "coh.fused_pass",
            Event::ModelSummaryBuild => "model.summary_build",
            Event::ModelPredict => "model.predict",
            Event::ModelUnsupported => "model.unsupported",
        }
    }
}

/// One histogram series (distributions, not totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistEvent {
    /// B-cache: lines examined per cluster walk.
    BcacheWalk,
    /// Adaptive group-associative: search distance (sets) scanned to find
    /// a disposable relocation host.
    AdaptiveRelocSearch,
    /// Partner-index: pairs formed per repartnering decision.
    PartnerEpochPairs,
    /// Fused kernel: lanes (schemes) driven per fused pass — the
    /// distribution shows how much sharing the fuse-grouping achieves.
    FusedGroupLanes,
    /// Chunked coherent kernel: hierarchies (schemes) driven per fused
    /// coherent pass — the sharing the `xp coherent` fuse-grouping
    /// achieves.
    CohGroupLanes,
}

impl HistEvent {
    /// Number of declared histogram series.
    pub const COUNT: usize = 5;

    /// Every series, in declaration order.
    pub const ALL: [HistEvent; HistEvent::COUNT] = [
        HistEvent::BcacheWalk,
        HistEvent::AdaptiveRelocSearch,
        HistEvent::PartnerEpochPairs,
        HistEvent::FusedGroupLanes,
        HistEvent::CohGroupLanes,
    ];

    /// Position in the histogram array.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable dotted name used as the metrics-JSON key.
    pub fn name(self) -> &'static str {
        match self {
            HistEvent::BcacheWalk => "bcache.walk",
            HistEvent::AdaptiveRelocSearch => "adaptive.reloc_search",
            HistEvent::PartnerEpochPairs => "partner.epoch_pairs",
            HistEvent::FusedGroupLanes => "fused.group_lanes",
            HistEvent::CohGroupLanes => "coh.group_lanes",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_event_exactly_once() {
        assert_eq!(Event::ALL.len(), Event::COUNT);
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "{e:?} out of declaration order");
        }
        let mut names: Vec<&str> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Event::COUNT, "duplicate event name");
    }

    #[test]
    fn hist_registry_is_consistent() {
        assert_eq!(HistEvent::ALL.len(), HistEvent::COUNT);
        for (i, h) in HistEvent::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        let mut names: Vec<&str> = HistEvent::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HistEvent::COUNT);
    }
}
