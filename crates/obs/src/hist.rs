//! Power-of-two-bucket histograms.
//!
//! Bucket 0 holds the value 0; bucket `i >= 1` holds the half-open
//! power-of-two range `[2^(i-1), 2^i)`. With 64-bit samples that is 65
//! buckets total, the last one covering `[2^63, u64::MAX]`. Bucketing is
//! a pure function of the sample — no configuration — so two runs (or
//! two shards) always agree on the shape.
//!
//! Like [`crate::CounterSet`], [`Histogram`] is plain always-compiled
//! data; the feature-gated global layer mirrors it with atomics.

/// Number of buckets: one for zero plus one per possible `ilog2`.
pub const BUCKETS: usize = 65;

/// The bucket a sample falls into.
#[inline(always)]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        1 + v.ilog2() as usize
    }
}

/// The inclusive `(lo, hi)` value range of bucket `i`.
///
/// Bucket 0 is `(0, 0)`; bucket `i >= 1` is `(2^(i-1), 2^i - 1)` — both
/// endpoints of every non-zero bucket are derived from exact powers of
/// two (property-tested in `tests/obs_props.rs`).
///
/// # Panics
/// If `i >= BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i == BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        };
        (lo, hi)
    }
}

/// A single power-of-two histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
        }
    }

    /// A histogram from raw bucket counts (used when mirroring an atomic
    /// shard back into the plain algebra).
    pub const fn from_buckets(buckets: [u64; BUCKETS]) -> Self {
        Histogram { buckets }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Element-wise sum (same merge law as [`crate::CounterSet`]).
    pub fn merge(&self, other: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (slot, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(other.buckets.iter()))
        {
            *slot = a.wrapping_add(*b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), BUCKETS - 1);
    }

    #[test]
    fn bounds_partition_the_u64_range() {
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} leaves a gap");
            assert!(hi >= lo);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn observe_lands_in_bounds() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 8, 1000, u64::MAX] {
            h.observe(v);
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(v >= lo && v <= hi, "{v} outside bucket {i} [{lo}, {hi}]");
        }
        assert_eq!(h.total(), 6);
    }
}
