//! The pure counter algebra: a fixed-size value set with a merge.
//!
//! [`CounterSet`] is plain data — always compiled, independent of the
//! `enabled` feature — so tests can state algebraic laws (merge is
//! associative and commutative, the identity is the zero set) without
//! touching the global sinks. The global layer in the crate root is a
//! thin atomic mirror of this type.

use crate::event::Event;

/// One value per declared [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSet {
    values: [u64; Event::COUNT],
}

impl Default for CounterSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterSet {
    /// The zero set (merge identity).
    pub const fn new() -> Self {
        CounterSet {
            values: [0; Event::COUNT],
        }
    }

    /// Adds `n` to one counter (wrapping, like the atomic sink).
    pub fn add(&mut self, e: Event, n: u64) {
        let slot = &mut self.values[e.index()];
        *slot = slot.wrapping_add(n);
    }

    /// Current value of one counter.
    pub fn get(&self, e: Event) -> u64 {
        self.values[e.index()]
    }

    /// Element-wise wrapping sum — the merge used when combining counter
    /// sets from independent shards. Wrapping `u64` addition is
    /// associative and commutative, so the merge order of shards can
    /// never change the total (property-tested in `tests/obs_props.rs`).
    pub fn merge(&self, other: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for (slot, (a, b)) in out
            .values
            .iter_mut()
            .zip(self.values.iter().zip(other.values.iter()))
        {
            *slot = a.wrapping_add(*b);
        }
        out
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = CounterSet::new();
        assert!(c.is_zero());
        c.add(Event::ColumnSwap, 3);
        c.add(Event::ColumnSwap, 2);
        assert_eq!(c.get(Event::ColumnSwap), 5);
        assert_eq!(c.get(Event::ColumnProbe), 0);
        assert!(!c.is_zero());
    }

    #[test]
    fn merge_identity_and_symmetry() {
        let mut a = CounterSet::new();
        a.add(Event::BcacheProbe, 7);
        let zero = CounterSet::new();
        assert_eq!(a.merge(&zero), a);
        let mut b = CounterSet::new();
        b.add(Event::BcacheProbe, 4);
        b.add(Event::BeladyEvict, 1);
        assert_eq!(a.merge(&b), b.merge(&a));
    }
}
