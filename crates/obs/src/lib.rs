//! `unicache-obs`: deterministic observability for the unicache
//! simulators.
//!
//! Three primitives, all with fixed, closed registries declared in
//! [`event`]:
//!
//! * **Counters** — one [`u64`] per [`Event`], bumped with relaxed
//!   atomics in a **per-thread shard** (registered on a thread's first
//!   recording call, drained into a global accumulator when the thread
//!   exits; see `shard`). Reads fold every shard with the commutative
//!   [`CounterSet::merge`]. Because the simulation layer memoizes each
//!   (workload, scheme, geometry) run to execute exactly once, and the
//!   shard merge commutes, the final totals are deterministic however
//!   the parallel executor spreads the simulations across workers.
//! * **Histograms** — power-of-two buckets per [`HistEvent`] for
//!   distributions (cluster-walk lengths, relocation search distances).
//! * **Spans** — logical-tick phase brackets recorded by RAII guards
//!   from [`span()`]. Per-name *counts* are deterministic; tick values and
//!   thread lanes are scheduling-dependent and therefore only appear in
//!   the Chrome trace export, never in metrics JSON.
//!
//! # Feature gating
//!
//! The whole recording layer sits behind the **`enabled`** cargo feature
//! (off by default). The public API is always present; without the
//! feature every recording function is an empty `#[inline(always)]`
//! stub and [`snapshot()`] returns an empty [`Snapshot`], so instrumented
//! hot paths compile to exactly the uninstrumented code in release
//! benchmark builds. No wall-clock types are used anywhere: the
//! workspace determinism lint (`uca lint`) confines `Instant` /
//! `SystemTime` to `crates/timing`, and this crate keeps to logical
//! ticks.

pub mod counter;
pub mod event;
pub mod hist;
#[cfg(feature = "enabled")]
mod shard;
pub mod snapshot;
pub mod span;

pub use counter::CounterSet;
pub use event::{Event, HistEvent};
pub use hist::{bucket_bounds, bucket_index, Histogram, BUCKETS};
pub use snapshot::{HistBucket, Snapshot};
pub use span::{SpanEvent, SpanLog};

/// True when the `enabled` feature compiled the recording layer in.
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod global {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// The global logical clock: advances once per span open/close.
    static TICK: AtomicU64 = AtomicU64::new(0);
    static SPANS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);

    std::thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to the calling thread's counter shard for `e`.
    #[inline(always)]
    pub fn count_by(e: Event, n: u64) {
        crate::shard::add(e, n);
    }

    /// Current value of the counter for `e`, folded across every shard.
    pub fn counter_value(e: Event) -> u64 {
        crate::shard::merged_counters().get(e)
    }

    /// Records one histogram sample in the calling thread's shard.
    #[inline(always)]
    pub fn observe(h: HistEvent, v: u64) {
        crate::shard::observe(h, v);
    }

    /// Current count in bucket `i` of series `h`, folded across every
    /// shard.
    pub fn hist_bucket(h: HistEvent, i: usize) -> u64 {
        crate::shard::merged_hist(h).count(i)
    }

    /// Number of live (registered, not yet drained) per-thread counter
    /// shards — lets tests observe registration/drain.
    pub fn live_shards() -> usize {
        crate::shard::live_shards()
    }

    /// An open span; records a [`SpanEvent`] when dropped.
    pub struct SpanGuard {
        name: &'static str,
        begin: u64,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            // Allowed Relaxed fetch: span ticks feed only the Chrome
            // trace diagnostic, which is documented as scheduling-dependent
            // and never compared byte-for-byte.
            let end = TICK.fetch_add(1, Ordering::Relaxed) + 1; // uca:allow(relaxed-output)
            let tid = TID.with(|t| *t);
            // Poison-safe: a panicking recorder loses its span rather
            // than cascading the panic through every later drop.
            if let Ok(mut spans) = SPANS.lock() {
                spans.push(SpanEvent {
                    name: self.name,
                    begin: self.begin,
                    end,
                    tid,
                });
            }
        }
    }

    /// Opens a span closed when the returned guard drops.
    pub fn span(name: &'static str) -> SpanGuard {
        // Allowed Relaxed fetch: see `SpanGuard::drop` — trace ticks are a
        // diagnostic stream, not program output.
        let begin = TICK.fetch_add(1, Ordering::Relaxed) + 1; // uca:allow(relaxed-output)
        SpanGuard { name, begin }
    }

    /// Zeroes every counter shard, histogram shard and recorded span
    /// (test isolation).
    pub fn reset() {
        crate::shard::reset();
        TICK.store(0, Ordering::Relaxed);
        if let Ok(mut spans) = SPANS.lock() {
            spans.clear();
        }
    }

    /// Captures all sinks into a [`Snapshot`], folding the per-thread
    /// shards with the commutative counter/histogram merges.
    pub fn snapshot() -> Snapshot {
        let merged = crate::shard::merged_counters();
        let mut counters: Vec<(&'static str, u64)> = Event::ALL
            .iter()
            .map(|&e| (e.name(), merged.get(e)))
            .collect();
        counters.sort_by_key(|(name, _)| *name);

        let raw: Vec<(&'static str, [u64; BUCKETS])> = HistEvent::ALL
            .iter()
            .map(|&h| (h.name(), *crate::shard::merged_hist(h).buckets()))
            .collect();
        let histograms = Snapshot::hist_section(raw);

        let span_events: Vec<SpanEvent> = match SPANS.lock() {
            Ok(spans) => spans.clone(),
            Err(_) => Vec::new(),
        };
        let mut by_name: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in &span_events {
            *by_name.entry(ev.name).or_insert(0) += 1;
        }
        let spans = by_name
            .into_iter()
            .map(|(name, count)| (name.to_string(), count))
            .collect();

        Snapshot {
            enabled: true,
            counters,
            histograms,
            spans,
            span_events,
        }
    }
}

#[cfg(feature = "enabled")]
pub use global::{
    count_by, counter_value, hist_bucket, live_shards, observe, reset, snapshot, span, SpanGuard,
};

/// Adds `n` to the counter for `e` (no-op: `enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn count_by(_e: Event, _n: u64) {}

/// Current value of the counter for `e` (always 0: `enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn counter_value(_e: Event) -> u64 {
    0
}

/// Records one histogram sample (no-op: `enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn observe(_h: HistEvent, _v: u64) {}

/// Current count in bucket `i` of series `h` (always 0: `enabled`
/// feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hist_bucket(_h: HistEvent, _i: usize) -> u64 {
    0
}

/// An open span (inert: `enabled` feature off).
#[cfg(not(feature = "enabled"))]
pub struct SpanGuard;

/// Opens a span (no-op: `enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard
}

/// Number of live per-thread counter shards (always 0: `enabled` feature
/// off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn live_shards() -> usize {
    0
}

/// Zeroes every sink (no-op: `enabled` feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn reset() {}

/// Captures all sinks (always empty: `enabled` feature off).
#[cfg(not(feature = "enabled"))]
pub fn snapshot() -> Snapshot {
    Snapshot::empty(false)
}

/// Bumps the counter for `e` by one.
#[inline(always)]
pub fn count(e: Event) {
    count_by(e, 1);
}

#[cfg(all(test, feature = "enabled"))]
mod global_tests {
    use super::*;
    use std::sync::Mutex;

    /// The sinks are process-global; serialize tests that touch them.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn count_observe_snapshot_reset_roundtrip() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        count(Event::ColumnProbe);
        count_by(Event::ColumnProbe, 4);
        observe(HistEvent::BcacheWalk, 3);
        {
            let _s = span("phase-a");
        }
        let snap = snapshot();
        assert!(snap.enabled);
        assert_eq!(counter_value(Event::ColumnProbe), 5);
        assert!(snap.counters.contains(&("column.probe", 5)));
        assert_eq!(snap.counters.len(), Event::COUNT, "all events present");
        let (_, walk) = snap
            .histograms
            .iter()
            .find(|(n, _)| *n == "bcache.walk")
            .expect("walk series present");
        assert_eq!(
            walk,
            &vec![HistBucket {
                lo: 2,
                hi: 3,
                count: 1
            }]
        );
        assert_eq!(snap.spans, vec![("phase-a".to_string(), 1)]);
        assert_eq!(snap.span_events.len(), 1);
        assert!(snap.span_events[0].begin < snap.span_events[0].end);
        reset();
        let snap = snapshot();
        assert!(snap.counters.iter().all(|&(_, v)| v == 0));
        assert!(snap.histograms.iter().all(|(_, b)| b.is_empty()));
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn shards_register_drain_and_merge_across_threads() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        count_by(Event::ColumnProbe, 1); // registers this thread's shard
        let live_before = live_shards();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    count_by(Event::ColumnProbe, 10);
                    observe(HistEvent::BcacheWalk, 5);
                });
            }
        });
        // The four worker shards drained on exit; their totals survive.
        assert_eq!(live_shards(), live_before, "worker shards drained");
        assert_eq!(counter_value(Event::ColumnProbe), 41);
        let snap = snapshot();
        assert!(snap.counters.contains(&("column.probe", 41)));
        let (_, walk) = snap
            .histograms
            .iter()
            .find(|(n, _)| *n == "bcache.walk")
            .expect("walk series present");
        assert_eq!(walk.iter().map(|b| b.count).sum::<u64>(), 4);
        reset();
        assert_eq!(counter_value(Event::ColumnProbe), 0);
    }

    #[test]
    fn nested_spans_record_laminar_ticks() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let snap = snapshot();
        let inner = snap.span_events.iter().find(|e| e.name == "inner").unwrap();
        let outer = snap.span_events.iter().find(|e| e.name == "outer").unwrap();
        assert!(outer.begin < inner.begin && inner.end < outer.end);
        reset();
    }
}
