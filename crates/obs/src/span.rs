//! Logical span events.
//!
//! A span brackets a phase (trace generation, a batched simulation, one
//! experiment) between two readings of a **logical tick counter** — not
//! the host clock, which the workspace's determinism lints confine to
//! `crates/timing`. Ticks only order events; they carry no duration
//! semantics, which is exactly enough for the Chrome trace-event export
//! to show phase structure and overlap.
//!
//! [`SpanLog`] is the pure, instance-based form used by the property
//! tests: open/close must nest like brackets, and the completed events
//! must form a laminar family (any two intervals are disjoint or
//! nested). The global feature-gated layer in the crate root records the
//! same [`SpanEvent`]s from RAII guards.

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name (static so recording never allocates).
    pub name: &'static str,
    /// Logical tick at open.
    pub begin: u64,
    /// Logical tick at close (`end >= begin`).
    pub end: u64,
    /// Ordinal of the recording thread (Chrome trace lane).
    pub tid: u64,
}

/// An instance-based span recorder with a private logical clock.
#[derive(Debug, Default)]
pub struct SpanLog {
    clock: u64,
    open: Vec<(&'static str, u64)>,
    events: Vec<SpanEvent>,
}

impl SpanLog {
    /// An empty log at tick 0.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Opens a span, advancing the logical clock.
    pub fn open(&mut self, name: &'static str) {
        self.clock += 1;
        self.open.push((name, self.clock));
    }

    /// Closes the innermost open span, recording its event. Returns the
    /// event, or `None` if no span is open.
    pub fn close(&mut self) -> Option<SpanEvent> {
        let (name, begin) = self.open.pop()?;
        self.clock += 1;
        let ev = SpanEvent {
            name,
            begin,
            end: self.clock,
            tid: 0,
        };
        self.events.push(ev);
        Some(ev)
    }

    /// Number of spans still open.
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Completed events, in close order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// True if the completed events are well-formed: every interval has
    /// `begin < end`, and any two intervals are either disjoint or
    /// strictly nested (the laminar-family property bracket-style
    /// open/close always produces).
    pub fn is_well_formed(&self) -> bool {
        for ev in &self.events {
            if ev.begin >= ev.end {
                return false;
            }
        }
        for (i, a) in self.events.iter().enumerate() {
            for b in self.events.iter().skip(i + 1) {
                let disjoint = a.end < b.begin || b.end < a.begin;
                let a_in_b = b.begin < a.begin && a.end < b.end;
                let b_in_a = a.begin < b.begin && b.end < a.end;
                if !(disjoint || a_in_b || b_in_a) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_records_laminar_intervals() {
        let mut log = SpanLog::new();
        log.open("outer");
        log.open("inner");
        assert_eq!(log.open_depth(), 2);
        let inner = log.close().unwrap();
        let outer = log.close().unwrap();
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert!(outer.begin < inner.begin && inner.end < outer.end);
        assert!(log.is_well_formed());
        assert!(log.close().is_none());
    }

    #[test]
    fn siblings_are_disjoint() {
        let mut log = SpanLog::new();
        log.open("a");
        log.close();
        log.open("b");
        log.close();
        let [a, b] = log.events() else { panic!() };
        assert!(a.end < b.begin);
        assert!(log.is_well_formed());
    }
}
