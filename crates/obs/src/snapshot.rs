//! Point-in-time captures of the global sinks, with deterministic
//! renderings.
//!
//! JSON is hand-rolled (the workspace serde shim does not serialize) and
//! deterministic by construction: counters and histograms are emitted in
//! name order over the *closed* event registries, and the span section
//! carries only per-name counts — span tick values depend on thread
//! interleaving and are confined to the Chrome trace export, which is a
//! debugging artifact, not a comparison surface.

use crate::hist::bucket_bounds;
use crate::span::SpanEvent;
use crate::BUCKETS;

/// One non-empty histogram bucket in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive lower bound of the bucket's value range.
    pub lo: u64,
    /// Inclusive upper bound of the bucket's value range.
    pub hi: u64,
    /// Samples recorded in the bucket.
    pub count: u64,
}

/// A capture of every counter, histogram and completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Whether the `enabled` feature compiled the sinks in. When false,
    /// everything below is empty.
    pub enabled: bool,
    /// `(name, value)` for every declared counter, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, non-empty buckets)` per histogram series, sorted by name.
    pub histograms: Vec<(&'static str, Vec<HistBucket>)>,
    /// `(name, completed-span count)`, sorted by name.
    pub spans: Vec<(String, u64)>,
    /// Raw completed spans (tick values are scheduling-dependent; used
    /// only by the Chrome trace export).
    pub span_events: Vec<SpanEvent>,
}

impl Snapshot {
    /// An empty snapshot (what the disabled build always returns).
    pub fn empty(enabled: bool) -> Self {
        Snapshot {
            enabled,
            counters: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            span_events: Vec::new(),
        }
    }

    /// Builds the sorted histogram section from raw bucket counts.
    pub fn hist_section(
        raw: Vec<(&'static str, [u64; BUCKETS])>,
    ) -> Vec<(&'static str, Vec<HistBucket>)> {
        let mut out: Vec<(&'static str, Vec<HistBucket>)> = raw
            .into_iter()
            .map(|(name, buckets)| {
                let nonzero = buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &count)| {
                        let (lo, hi) = bucket_bounds(i);
                        HistBucket { lo, hi, count }
                    })
                    .collect();
                (name, nonzero)
            })
            .collect();
        out.sort_by_key(|(name, _)| *name);
        out
    }

    /// Deterministic metrics JSON: counters/histograms/span counts in
    /// name order. Two runs of the same deterministic workload produce
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"obs_enabled\": {},\n", self.enabled));
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!("\n    \"{name}\": {v}{comma}"));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, buckets)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("\n    \"{name}\": ["));
            for (j, b) in buckets.iter().enumerate() {
                let bcomma = if j + 1 < buckets.len() { ", " } else { "" };
                out.push_str(&format!(
                    "{{\"lo\": {}, \"hi\": {}, \"count\": {}}}{bcomma}",
                    b.lo, b.hi, b.count
                ));
            }
            out.push_str(&format!("]{comma}"));
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"spans\": [");
        for (i, (name, count)) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            out.push_str(&format!(
                "\n    {{\"name\": \"{name}\", \"count\": {count}}}{comma}"
            ));
        }
        out.push_str(if self.spans.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out.push('\n');
        out
    }

    /// Chrome trace-event JSON (`chrome://tracing`, Perfetto). Timestamps
    /// are logical ticks, so the visual proportions reflect event *order*
    /// and phase structure, not wall time.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = self.span_events.clone();
        events
            .sort_by(|a, b| (a.begin, a.end, a.name, a.tid).cmp(&(b.begin, b.end, b.name, b.tid)));
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, ev) in events.iter().enumerate() {
            let comma = if i + 1 < events.len() { "," } else { "" };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}{comma}\n",
                ev.name,
                ev.begin,
                ev.end - ev.begin,
                ev.tid
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_renders_valid_sections() {
        let s = Snapshot::empty(false);
        let j = s.to_json();
        assert!(j.contains("\"obs_enabled\": false"));
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"spans\": []"));
        let t = s.to_chrome_trace();
        assert!(t.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let snap = Snapshot {
            enabled: true,
            counters: vec![("a.x", 1), ("b.y", 2)],
            histograms: Snapshot::hist_section(vec![("h.one", {
                let mut b = [0u64; BUCKETS];
                b[0] = 2;
                b[3] = 5;
                b
            })]),
            spans: vec![("fig4".to_string(), 1)],
            span_events: vec![SpanEvent {
                name: "fig4",
                begin: 1,
                end: 4,
                tid: 0,
            }],
        };
        let j = snap.to_json();
        assert!(j.find("a.x").unwrap() < j.find("b.y").unwrap());
        assert!(j.contains("{\"lo\": 0, \"hi\": 0, \"count\": 2}"));
        assert!(j.contains("{\"lo\": 4, \"hi\": 7, \"count\": 5}"));
        assert_eq!(snap.to_json(), j, "rendering is a pure function");
        let t = snap.to_chrome_trace();
        assert!(t.contains("\"ts\":1,\"dur\":3"));
    }
}
