//! Partner *chains* — the paper's §1.2 extension of the partner-index
//! idea: "In principle we can extend the 'partner index' idea to create a
//! linked list of cache lines, effectively increasing the set-associativity
//! for selected 'hot' sets. Of course, the longer the list, the more
//! cycles are expended in finding the desired object."
//!
//! Each hot set may own an ordered chain of cold sets. A primary miss
//! walks the chain (each hop costs a probe — recorded so the timing model
//! can charge depth-proportional latency); a chain hit promotes the block
//! to the primary slot; a miss everywhere cascades the displaced lines one
//! hop down the chain and evicts from the tail.

use serde::{Deserialize, Serialize};
use unicache_core::{
    AccessResult, BlockAddr, CacheGeometry, CacheModel, CacheStats, ConfigError, HitWhere,
    MemRecord, Result,
};

/// Chain-building knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Accesses between re-chaining decisions.
    pub epoch: u64,
    /// Maximum number of hot sets that receive chains.
    pub max_chains: usize,
    /// Links per chain (1 reproduces the partner-index cache).
    pub chain_len: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            epoch: 8192,
            max_chains: 32,
            chain_len: 3,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
}

impl Line {
    fn empty() -> Self {
        Line {
            block: 0,
            valid: false,
            dirty: false,
        }
    }
}

/// Direct-mapped cache with dynamically assigned partner chains.
pub struct PartnerChainCache {
    geom: CacheGeometry,
    lines: Vec<Line>,
    /// `chains[s]` = ordered chain of partner sets for hot set `s` (empty
    /// for unchained sets).
    chains: Vec<Vec<usize>>,
    /// True if the set is serving inside someone's chain.
    lent: Vec<bool>,
    stats: CacheStats,
    cfg: ChainConfig,
    epoch_accesses: Vec<u64>,
    epoch_misses: Vec<u64>,
    since_rechain: u64,
    /// Histogram of chain-hit depths (index 0 = first link).
    depth_hits: Vec<u64>,
    name: String,
}

impl PartnerChainCache {
    /// Default chaining policy.
    pub fn new(geom: CacheGeometry) -> Result<Self> {
        Self::with_config(geom, ChainConfig::default())
    }

    /// Custom chaining policy.
    pub fn with_config(geom: CacheGeometry, cfg: ChainConfig) -> Result<Self> {
        if geom.ways() != 1 {
            return Err(ConfigError::Mismatch {
                what: "partner-chain cache extends a direct-mapped cache".into(),
            });
        }
        if cfg.epoch == 0 || cfg.chain_len == 0 {
            return Err(ConfigError::InvalidParameter {
                what: "epoch and chain_len must be positive".into(),
            });
        }
        let n = geom.num_sets();
        Ok(PartnerChainCache {
            geom,
            lines: vec![Line::empty(); n],
            chains: vec![Vec::new(); n],
            lent: vec![false; n],
            stats: CacheStats::new(n),
            cfg,
            epoch_accesses: vec![0; n],
            epoch_misses: vec![0; n],
            since_rechain: 0,
            depth_hits: vec![0; cfg.chain_len],
            name: format!(
                "partner_chain(epoch={},chains={},len={})",
                cfg.epoch, cfg.max_chains, cfg.chain_len
            ),
        })
    }

    /// Chain assigned to a set (tests/inspection).
    pub fn chain_of(&self, set: usize) -> &[usize] {
        &self.chains[set]
    }

    /// Number of sets currently owning a chain.
    pub fn active_chains(&self) -> usize {
        self.chains.iter().filter(|c| !c.is_empty()).count()
    }

    /// Hits at each chain depth (index 0 = first link).
    pub fn depth_hits(&self) -> &[u64] {
        &self.depth_hits
    }

    fn rechain(&mut self) {
        let n = self.lines.len();
        let mask = n as u64 - 1;
        // Invalidate foreign residents before dissolving (single-residency;
        // see PartnerIndexCache::repartner for the failure mode).
        for (set, l) in self.lines.iter_mut().enumerate() {
            if l.valid && (l.block & mask) as usize != set {
                *l = Line::empty();
            }
        }
        for c in &mut self.chains {
            c.clear();
        }
        self.lent.iter_mut().for_each(|b| *b = false);

        let mut by_misses: Vec<usize> = (0..n).collect();
        by_misses.sort_by_key(|&s| std::cmp::Reverse(self.epoch_misses[s]));
        let mut by_accesses: Vec<usize> = (0..n).collect();
        by_accesses.sort_by_key(|&s| self.epoch_accesses[s]);
        let mut cold_iter = by_accesses.into_iter();

        let mut taken = vec![false; n];
        let mut built = 0usize;
        for &hot in &by_misses {
            if built >= self.cfg.max_chains || self.epoch_misses[hot] == 0 {
                break;
            }
            if taken[hot] {
                continue;
            }
            taken[hot] = true;
            let mut chain = Vec::with_capacity(self.cfg.chain_len);
            while chain.len() < self.cfg.chain_len {
                let Some(cold) = cold_iter
                    .by_ref()
                    .find(|&c| !taken[c] && self.epoch_accesses[c] < self.epoch_misses[hot])
                else {
                    break;
                };
                taken[cold] = true;
                self.lent[cold] = true;
                chain.push(cold);
            }
            if chain.is_empty() {
                taken[hot] = false;
                break; // no cold sets left at all
            }
            self.chains[hot] = chain;
            built += 1;
        }
        self.epoch_accesses.iter_mut().for_each(|c| *c = 0);
        self.epoch_misses.iter_mut().for_each(|c| *c = 0);
    }
}

impl CacheModel for PartnerChainCache {
    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn access(&mut self, rec: MemRecord) -> AccessResult {
        self.access_block(self.geom.block_addr(rec.addr), rec.kind.is_write())
    }

    fn access_block(&mut self, block: u64, is_write: bool) -> AccessResult {
        if is_write {
            self.stats.record_write();
        }
        let p = (block & (self.lines.len() as u64 - 1)) as usize;
        self.epoch_accesses[p] += 1;
        self.since_rechain += 1;

        let mut outcome = HitWhere::MissDirect;
        let mut evicted = None;

        if self.lines[p].valid && self.lines[p].block == block {
            if is_write {
                self.lines[p].dirty = true;
            }
            outcome = HitWhere::Primary;
        } else {
            // Walk the chain.
            let chain = self.chains[p].clone();
            let mut found: Option<usize> = None;
            for (depth, &s) in chain.iter().enumerate() {
                if self.lines[s].valid && self.lines[s].block == block {
                    found = Some(depth);
                    break;
                }
            }
            match found {
                Some(depth) => {
                    // Promote to primary; displaced primary takes the hit
                    // link's slot.
                    self.depth_hits[depth] += 1;
                    let s = chain[depth];
                    let mut incoming = self.lines[s];
                    if is_write {
                        incoming.dirty = true;
                    }
                    let outgoing = self.lines[p];
                    self.lines[p] = incoming;
                    self.lines[s] = outgoing; // may be invalid; fine
                    self.stats.record_relocation();
                    outcome = HitWhere::Secondary;
                }
                None => {
                    self.epoch_misses[p] += 1;
                    if chain.is_empty() {
                        // Plain direct-mapped replacement.
                        if self.lines[p].valid {
                            evicted = Some(self.lines[p].block);
                            self.stats.record_eviction(p);
                        }
                    } else {
                        // Cascade one hop down the chain; evict the tail.
                        //
                        // Only blocks homed at `p` may ride the chain: a
                        // lent set's *own* resident (filled by its home
                        // set's direct miss) must never be shifted into a
                        // third set, where a later home-set fill would
                        // create a second copy. Foreign residents are
                        // dropped in place instead.
                        outcome = HitWhere::MissAfterProbe;
                        let mask = self.lines.len() as u64 - 1;
                        let homed = |l: &Line| l.valid && (l.block & mask) as usize == p;
                        // In-range: this branch requires `!chain.is_empty()`.
                        let tail = chain[chain.len() - 1];
                        if self.lines[tail].valid {
                            evicted = Some(self.lines[tail].block);
                            self.stats.record_eviction(tail);
                        }
                        for i in (1..chain.len()).rev() {
                            let prev = self.lines[chain[i - 1]];
                            // A foreign resident about to be overwritten is
                            // an eviction of that set.
                            let cur = self.lines[chain[i]];
                            if i != chain.len() - 1 && cur.valid && !homed(&cur) {
                                self.stats.record_eviction(chain[i]);
                            }
                            self.lines[chain[i]] = if homed(&prev) { prev } else { Line::empty() };
                        }
                        let head_old = self.lines[chain[0]];
                        if head_old.valid && !homed(&head_old) && chain.len() == 1 {
                            // length-1 chain: head is also the tail,
                            // already recorded above.
                        } else if head_old.valid && !homed(&head_old) {
                            self.stats.record_eviction(chain[0]);
                        }
                        self.lines[chain[0]] = self.lines[p];
                        if self.lines[chain[0]].valid {
                            self.stats.record_relocation();
                        }
                    }
                    self.lines[p] = Line {
                        block,
                        valid: true,
                        dirty: is_write,
                    };
                }
            }
        }
        self.stats.record(p, outcome);
        if self.since_rechain >= self.cfg.epoch {
            self.since_rechain = 0;
            self.rechain();
        }
        AccessResult {
            where_hit: outcome,
            set: p,
            evicted,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.depth_hits.iter_mut().for_each(|d| *d = 0);
    }

    fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::empty();
        }
        for c in &mut self.chains {
            c.clear();
        }
        self.lent.iter_mut().for_each(|b| *b = false);
        self.epoch_accesses.iter_mut().for_each(|c| *c = 0);
        self.epoch_misses.iter_mut().for_each(|c| *c = 0);
        self.since_rechain = 0;
        self.reset_stats();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Fusable via the default (monomorphized) chunk loop, like
/// [`crate::PartnerIndexCache`]: the primary index is a plain mask, so
/// fusing's win here is eliminating the per-record virtual dispatch.
impl unicache_core::FusedLane for PartnerChainCache {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partner::{PartnerConfig, PartnerIndexCache};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn geom(sets: usize) -> CacheGeometry {
        CacheGeometry::from_sets(sets, 32, 1).unwrap()
    }

    fn read_block(b: u64) -> MemRecord {
        MemRecord::read(b * 32)
    }

    fn cfg(epoch: u64, chains: usize, len: usize) -> ChainConfig {
        ChainConfig {
            epoch,
            max_chains: chains,
            chain_len: len,
        }
    }

    #[test]
    fn validation() {
        assert!(PartnerChainCache::new(geom(16)).is_ok());
        assert!(PartnerChainCache::new(CacheGeometry::from_sets(16, 32, 2).unwrap()).is_err());
        assert!(PartnerChainCache::with_config(geom(16), cfg(0, 4, 2)).is_err());
        assert!(PartnerChainCache::with_config(geom(16), cfg(8, 4, 0)).is_err());
    }

    #[test]
    fn chain_absorbs_four_way_conflict() {
        // Four blocks conflict on set 0 of a 16-set cache. A chain of
        // length 3 gives set 0 effective associativity 4.
        let mut c = PartnerChainCache::with_config(geom(16), cfg(128, 4, 3)).unwrap();
        let blocks = [0u64, 16, 32, 48];
        for _ in 0..64 {
            for &b in &blocks {
                c.access(read_block(b));
            }
        }
        assert!(c.active_chains() >= 1);
        assert_eq!(c.chain_of(0).len(), 3);
        // Steady state after chaining: all four coexist.
        for &b in &blocks {
            c.access(read_block(b));
        }
        let before = c.stats().misses();
        for _ in 0..20 {
            for &b in &blocks {
                assert!(c.access(read_block(b)).is_hit(), "block {b}");
            }
        }
        assert_eq!(c.stats().misses(), before);
        assert!(c.depth_hits().iter().sum::<u64>() > 0);
    }

    #[test]
    fn chain_len_one_matches_partner_index_semantics() {
        // With identical epochs/limits, a 1-link chain and the partner
        // cache absorb the same 2-way conflict.
        let mut chain = PartnerChainCache::with_config(geom(8), cfg(64, 4, 1)).unwrap();
        let mut partner = PartnerIndexCache::with_config(
            geom(8),
            PartnerConfig {
                epoch: 64,
                max_pairs: 4,
            },
        )
        .unwrap();
        for _ in 0..200 {
            for b in [0u64, 8] {
                chain.access(read_block(b));
                partner.access(read_block(b));
            }
        }
        // Both settle into zero steady-state misses.
        let (c0, p0) = (chain.stats().misses(), partner.stats().misses());
        for _ in 0..20 {
            for b in [0u64, 8] {
                chain.access(read_block(b));
                partner.access(read_block(b));
            }
        }
        assert_eq!(chain.stats().misses(), c0);
        assert_eq!(partner.stats().misses(), p0);
    }

    #[test]
    fn longer_chains_hit_deeper() {
        let mut c = PartnerChainCache::with_config(geom(32), cfg(256, 2, 3)).unwrap();
        let blocks = [0u64, 32, 64, 96];
        for _ in 0..256 {
            for &b in &blocks {
                c.access(read_block(b));
            }
        }
        // Depth histogram has entries beyond depth 0 (a 4-way conflict
        // cycling through promotion pushes blocks deep).
        let depths = c.depth_hits();
        assert!(depths.iter().skip(1).any(|&d| d > 0), "{depths:?}");
    }

    #[test]
    fn single_residency_under_random_traffic() {
        let mut c = PartnerChainCache::with_config(geom(16), cfg(100, 4, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        for step in 0..4000 {
            c.access(read_block(rng.gen_range(0u64..96)));
            if step % 127 == 0 {
                for probe in 0..96u64 {
                    let copies = c
                        .lines
                        .iter()
                        .filter(|l| l.valid && l.block == probe)
                        .count();
                    assert!(copies <= 1, "block {probe}: {copies} copies @ {step}");
                }
            }
        }
    }

    #[test]
    fn flush_dissolves_chains() {
        let mut c = PartnerChainCache::with_config(geom(8), cfg(16, 4, 2)).unwrap();
        for _ in 0..40 {
            c.access(read_block(0));
            c.access(read_block(8));
        }
        c.flush();
        assert_eq!(c.active_chains(), 0);
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.depth_hits().iter().sum::<u64>(), 0);
    }
}
