//! Column-associative cache (paper Section III.A; Agarwal & Pudar, paper reference 2).
//!
//! A direct-mapped cache that, on a first-probe miss, re-probes the set
//! whose index has the most-significant index bit flipped ("column" of the
//! other half). A **rehash bit** per set records whether the resident line
//! was placed via the flipped index:
//!
//! * first-probe hit → 1-cycle hit;
//! * first-probe miss in a set whose rehash bit is **set** → replace in
//!   place, clear the rehash bit (no second probe — the resident was
//!   somebody's secondary copy, so the conventional owner wins the set
//!   back);
//! * otherwise probe the alternate set: hit there → 2-cycle hit **and the
//!   two lines swap** so the next access hits first-probe;
//! * miss in both → the primary resident is *moved* to the alternate set
//!   (rehash bit of the alternate set := 1) instead of being evicted, and
//!   the new block fills the primary set.
//!
//! The primary index is pluggable — the paper's Fig. 8 attaches XOR,
//! odd-multiplier and prime-modulo primaries to exactly this structure.

use std::sync::Arc;
use unicache_core::{
    AccessResult, BlockAddr, CacheGeometry, CacheModel, CacheStats, ConfigError, FusedLane,
    HitWhere, IndexFunction, MemRecord, Result,
};
use unicache_indexing::ModuloIndex;

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
    /// True if this line was filled via the flipped (rehash) index.
    rehash: bool,
}

impl Line {
    fn empty() -> Self {
        Line {
            block: 0,
            valid: false,
            dirty: false,
            rehash: false,
        }
    }
}

/// A column-associative (pseudo-associative) cache.
pub struct ColumnAssociativeCache {
    geom: CacheGeometry,
    index: Arc<dyn IndexFunction>,
    lines: Vec<Line>,
    stats: CacheStats,
    flip_mask: usize,
    name: String,
    /// Chunk-sized primary-index scratch reused across fused steps.
    idx_buf: Vec<usize>,
}

impl ColumnAssociativeCache {
    /// Column-associative cache with the conventional primary index.
    pub fn new(geom: CacheGeometry) -> Result<Self> {
        let idx: Arc<dyn IndexFunction> = Arc::new(ModuloIndex::new(geom.num_sets())?);
        Self::with_index(geom, idx)
    }

    /// Column-associative cache with a custom primary index (Fig. 8).
    pub fn with_index(geom: CacheGeometry, index: Arc<dyn IndexFunction>) -> Result<Self> {
        if geom.ways() != 1 {
            return Err(ConfigError::Mismatch {
                what: "column-associative cache is built from a direct-mapped cache".into(),
            });
        }
        if geom.num_sets() < 2 {
            return Err(ConfigError::OutOfRange {
                what: "column-associative sets",
                expected: ">= 2".into(),
                got: geom.num_sets() as u64,
            });
        }
        if index.num_sets() > geom.num_sets() {
            return Err(ConfigError::Mismatch {
                what: format!(
                    "index '{}' covers {} sets, cache has {}",
                    index.name(),
                    index.num_sets(),
                    geom.num_sets()
                ),
            });
        }
        let name = format!("column_associative({})", index.name());
        Ok(ColumnAssociativeCache {
            geom,
            index,
            lines: vec![Line::empty(); geom.num_sets()],
            stats: CacheStats::new(geom.num_sets()),
            flip_mask: geom.num_sets() / 2,
            name,
            idx_buf: Vec::new(),
        })
    }

    /// The alternate ("column") set: most-significant index bit flipped.
    #[inline]
    pub fn alternate_of(&self, set: usize) -> usize {
        set ^ self.flip_mask
    }

    /// The primary set of a block under the attached index.
    #[inline]
    pub fn primary_of(&self, block: BlockAddr) -> usize {
        self.index.index_block(block)
    }

    /// True if `block` is resident (either location).
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        let p = self.primary_of(block);
        let a = self.alternate_of(p);
        (self.lines[p].valid && self.lines[p].block == block)
            || (self.lines[a].valid && self.lines[a].block == block)
    }

    /// Rehash bit of a set (for tests).
    pub fn rehash_bit(&self, set: usize) -> bool {
        self.lines[set].rehash
    }

    /// One access with the primary set already computed — the shared tail
    /// of [`CacheModel::access_block`] and the fused chunk step (which
    /// vectorizes the primary-index computation and replays this per
    /// record). The first-probe → reclaim → second-probe+swap → displace
    /// sequence and its obs events are identical in both paths.
    #[inline]
    fn access_with_primary(&mut self, p: usize, block: u64, is_write: bool) -> AccessResult {
        if is_write {
            self.stats.record_write();
        }
        unicache_obs::count(unicache_obs::Event::ColumnProbe);
        let a = self.alternate_of(p);

        // First probe.
        if self.lines[p].valid && self.lines[p].block == block {
            if is_write {
                self.lines[p].dirty = true;
            }
            self.stats.record(p, HitWhere::Primary);
            return AccessResult {
                where_hit: HitWhere::Primary,
                set: p,
                evicted: None,
            };
        }

        // Direct miss into a rehashed set: reclaim without a second probe.
        if self.lines[p].valid && self.lines[p].rehash {
            unicache_obs::count(unicache_obs::Event::ColumnReclaim);
            let evicted = Some(self.lines[p].block);
            self.stats.record(p, HitWhere::MissDirect);
            self.stats.record_eviction(p);
            self.lines[p] = Line {
                block,
                valid: true,
                dirty: is_write,
                rehash: false,
            };
            return AccessResult {
                where_hit: HitWhere::MissDirect,
                set: p,
                evicted,
            };
        }

        // Second probe (the alternate column).
        unicache_obs::count(unicache_obs::Event::ColumnSecondProbe);
        if self.lines[a].valid && self.lines[a].block == block {
            unicache_obs::count(unicache_obs::Event::ColumnSwap);
            // Swap so the next reference first-probe hits.
            let mut incoming = self.lines[a];
            if is_write {
                incoming.dirty = true;
            }
            let outgoing = self.lines[p];
            self.lines[p] = Line {
                rehash: false,
                ..incoming
            };
            self.lines[a] = if outgoing.valid {
                Line {
                    rehash: true,
                    ..outgoing
                }
            } else {
                Line::empty()
            };
            self.stats.record(p, HitWhere::Secondary);
            self.stats.record_relocation();
            return AccessResult {
                where_hit: HitWhere::Secondary,
                set: p,
                evicted: None,
            };
        }

        // Miss in both: displace the primary resident into the alternate
        // set (rehash := 1) rather than evicting it; the alternate's old
        // resident is the true victim.
        let displaced = self.lines[p];
        let evicted = if self.lines[a].valid {
            self.stats.record_eviction(a);
            Some(self.lines[a].block)
        } else {
            None
        };
        self.lines[a] = if displaced.valid {
            unicache_obs::count(unicache_obs::Event::ColumnDisplace);
            self.stats.record_relocation();
            Line {
                rehash: true,
                ..displaced
            }
        } else {
            Line::empty()
        };
        self.lines[p] = Line {
            block,
            valid: true,
            dirty: is_write,
            rehash: false,
        };
        self.stats.record(p, HitWhere::MissAfterProbe);
        AccessResult {
            where_hit: HitWhere::MissAfterProbe,
            set: p,
            evicted,
        }
    }
}

impl CacheModel for ColumnAssociativeCache {
    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn access(&mut self, rec: MemRecord) -> AccessResult {
        self.access_block(self.geom.block_addr(rec.addr), rec.kind.is_write())
    }

    fn access_block(&mut self, block: u64, is_write: bool) -> AccessResult {
        let p = self.primary_of(block);
        self.access_with_primary(p, block, is_write)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::empty();
        }
        self.stats.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl FusedLane for ColumnAssociativeCache {
    /// Fast chunk path: the pluggable primary index (the only virtual
    /// call on the per-record path) is vectorized with one `index_many`
    /// per chunk; the probe/reclaim/swap/displace state machine then runs
    /// per record with zero virtual dispatch.
    fn step_chunk(&mut self, blocks: &[u64], writes: &[bool]) {
        let mut primaries = std::mem::take(&mut self.idx_buf);
        primaries.resize(blocks.len(), 0);
        let index = Arc::clone(&self.index);
        index.index_many(blocks, &mut primaries);
        for ((&p, &block), &is_write) in primaries.iter().zip(blocks).zip(writes) {
            self.access_with_primary(p, block, is_write);
        }
        self.idx_buf = primaries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicache_indexing::XorIndex;

    fn geom8() -> CacheGeometry {
        CacheGeometry::from_sets(8, 32, 1).unwrap()
    }

    fn read_block(b: u64) -> MemRecord {
        MemRecord::read(b * 32)
    }

    #[test]
    fn construction_validation() {
        assert!(ColumnAssociativeCache::new(geom8()).is_ok());
        let assoc_geom = CacheGeometry::from_sets(8, 32, 2).unwrap();
        assert!(ColumnAssociativeCache::new(assoc_geom).is_err());
        let tiny = CacheGeometry::from_sets(1, 32, 1).unwrap();
        assert!(ColumnAssociativeCache::new(tiny).is_err());
    }

    #[test]
    fn alternate_flips_msb() {
        let c = ColumnAssociativeCache::new(geom8()).unwrap();
        assert_eq!(c.alternate_of(0), 4);
        assert_eq!(c.alternate_of(3), 7);
        assert_eq!(c.alternate_of(5), 1);
    }

    #[test]
    fn conflicting_pair_is_absorbed() {
        // Blocks 0 and 8 both map to set 0 conventionally. A direct-mapped
        // cache ping-pongs; column-associative keeps both (one at set 0,
        // one rehashed at set 4).
        let mut c = ColumnAssociativeCache::new(geom8()).unwrap();
        c.access(read_block(0));
        c.access(read_block(8));
        assert!(c.contains_block(0));
        assert!(c.contains_block(8));
        // Steady state: alternating accesses are secondary hits w/ swap.
        let before = c.stats().misses();
        for _ in 0..10 {
            assert!(c.access(read_block(0)).is_hit());
            assert!(c.access(read_block(8)).is_hit());
        }
        assert_eq!(c.stats().misses(), before);
        assert!(c.stats().secondary_hits > 0);
    }

    #[test]
    fn swap_promotes_secondary_to_primary() {
        let mut c = ColumnAssociativeCache::new(geom8()).unwrap();
        c.access(read_block(0));
        c.access(read_block(8)); // displaces 0 -> set 4 (rehash)
        assert!(c.rehash_bit(4));
        let r = c.access(read_block(0)); // secondary hit + swap
        assert_eq!(r.where_hit, HitWhere::Secondary);
        // Now 0 is primary at set 0, 8 rehashed at set 4.
        let r = c.access(read_block(0));
        assert_eq!(r.where_hit, HitWhere::Primary);
        let r = c.access(read_block(8));
        assert_eq!(r.where_hit, HitWhere::Secondary);
    }

    #[test]
    fn rehash_set_reclaimed_by_conventional_owner() {
        let mut c = ColumnAssociativeCache::new(geom8()).unwrap();
        c.access(read_block(0)); // set 0
        c.access(read_block(8)); // set 0; 0 rehashed to set 4
        assert!(c.rehash_bit(4));
        // Block 4 conventionally owns set 4; its miss must replace the
        // rehashed line *without* a second probe.
        let r = c.access(read_block(4));
        assert_eq!(r.where_hit, HitWhere::MissDirect);
        assert_eq!(r.evicted, Some(0));
        assert!(!c.rehash_bit(4));
        assert!(!c.contains_block(0));
        assert!(c.contains_block(4));
    }

    #[test]
    fn three_way_conflict_still_thrashes_partially() {
        let mut c = ColumnAssociativeCache::new(geom8()).unwrap();
        // Three blocks on set 0 exceed the two available columns.
        let blocks = [0u64, 8, 16];
        for _ in 0..20 {
            for &b in &blocks {
                c.access(read_block(b));
            }
        }
        assert!(c.stats().misses() > 3, "cannot hold a 3-way conflict");
    }

    #[test]
    fn dirty_bit_survives_displacement_and_swap() {
        let mut c = ColumnAssociativeCache::new(geom8()).unwrap();
        c.access(MemRecord::write(0)); // block 0 dirty at set 0
        c.access(read_block(8)); // displace dirty 0 to set 4
        let r = c.access(read_block(16)); // displaces 8 to set 4, evicting 0
        assert_eq!(r.evicted, Some(0), "dirty block is the write-back victim");
        // (Eviction of block 0 must be visible for write-back modeling.)
    }

    #[test]
    fn custom_primary_index_changes_conflicts() {
        let xor: Arc<dyn IndexFunction> = Arc::new(XorIndex::new(8).unwrap());
        let mut c = ColumnAssociativeCache::with_index(geom8(), xor).unwrap();
        assert_eq!(c.name(), "column_associative(xor)");
        // Blocks 0 and 8: xor maps them to different sets already.
        c.access(read_block(0));
        c.access(read_block(8));
        assert_eq!(c.stats().secondary_hits, 0);
        assert!(c.access(read_block(0)).where_hit == HitWhere::Primary);
    }

    #[test]
    fn block_never_resident_twice() {
        let mut c = ColumnAssociativeCache::new(geom8()).unwrap();
        // Adversarial interleaving over one conflict pair + the alternates'
        // own blocks.
        let pattern = [0u64, 8, 0, 4, 8, 12, 0, 8, 4, 0, 12, 8];
        for &b in pattern.iter().cycle().take(200) {
            c.access(read_block(b));
            // Count residencies of each block.
            for &blk in &pattern {
                let p = c.primary_of(blk);
                let a = c.alternate_of(p);
                let copies = [p, a]
                    .iter()
                    .filter(|&&s| {
                        let l = &c.lines[s];
                        l.valid && l.block == blk
                    })
                    .count();
                assert!(copies <= 1, "block {blk} resident {copies} times");
            }
        }
    }

    #[test]
    fn flush_and_reset() {
        let mut c = ColumnAssociativeCache::new(geom8()).unwrap();
        c.access(read_block(0));
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.contains_block(0));
        c.flush();
        assert!(!c.contains_block(0));
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Single residency and rehash-bit consistency under arbitrary
        /// block streams: a block never occupies both its locations, and a
        /// line marked rehashed must be reachable as somebody's alternate.
        #[test]
        fn residency_and_rehash_invariants(
            blocks in proptest::collection::vec(0u64..64, 1..400)
        ) {
            let geom = CacheGeometry::from_sets(8, 32, 1).unwrap();
            let mut c = ColumnAssociativeCache::new(geom).unwrap();
            for &b in &blocks {
                c.access(MemRecord::read(b * 32));
                // No block appears twice.
                for probe in 0..64u64 {
                    let p = c.primary_of(probe);
                    let a = c.alternate_of(p);
                    let at_p = c.lines[p].valid && c.lines[p].block == probe;
                    let at_a = c.lines[a].valid && c.lines[a].block == probe;
                    prop_assert!(!(at_p && at_a), "block {probe} resident twice");
                }
                // A valid rehashed line holds a block whose primary set is
                // the *alternate* of where it sits.
                for (set, line) in c.lines.iter().enumerate() {
                    if line.valid && line.rehash {
                        let home = c.primary_of(line.block);
                        prop_assert_eq!(
                            c.alternate_of(home), set,
                            "rehash bit set on a conventionally-placed line"
                        );
                    }
                }
            }
        }

        /// Accesses are conserved and every access outcome is one of the
        /// four taxonomy cases with coherent counters.
        #[test]
        fn outcome_taxonomy_is_complete(
            blocks in proptest::collection::vec(0u64..256, 1..300)
        ) {
            let geom = CacheGeometry::from_sets(16, 32, 1).unwrap();
            let mut c = ColumnAssociativeCache::new(geom).unwrap();
            for &b in &blocks {
                c.access(MemRecord::read(b * 32));
            }
            let s = c.stats();
            prop_assert_eq!(s.accesses() as usize, blocks.len());
            prop_assert_eq!(
                s.primary_hits + s.secondary_hits + s.misses_direct + s.misses_after_probe,
                blocks.len() as u64
            );
        }
    }
}
