//! Adaptive group-associative cache (paper Section III.B; Peir, Lee & Hsu,
//! ASPLOS 1998).
//!
//! A direct-mapped cache augmented with two tables:
//!
//! * **SHT** (set-reference history table) — the indexes of the most
//!   recently used sets. A line whose set is in the SHT is considered
//!   *non-disposable*: worth keeping in an alternate location when
//!   displaced. Paper sizing: `3/8` of the line count.
//! * **OUT** (out-of-position directory) — maps a displaced block to the
//!   set currently holding it. Probed in parallel with the cache, but a
//!   hit through OUT costs 3 extra cycles (paper Eq. 8). Paper sizing:
//!   `4/16` of the line count.
//!
//! Behaviour implemented from the paper's own description:
//!
//! * primary hit → update SHT (MRU);
//! * primary miss, resident's **disposable** bit set (its set is not in
//!   the SHT) → replace in place, *without consulting OUT*;
//! * primary miss, non-disposable resident → probe OUT: a match whose
//!   alternate set still holds the block is a **Secondary** hit and the
//!   block is swapped back to its primary set; otherwise the displaced
//!   resident is moved to a *nearby disposable line* and registered in OUT
//!   (evicting the LRU OUT entry — and its now-unreachable line — when the
//!   directory is full).
//!
//! Invariant maintained throughout (and property-tested): a block is
//! resident in at most one location, and every OUT entry points at a set
//! that actually holds its block.

use serde::{Deserialize, Serialize};
use unicache_core::{
    AccessResult, BlockAddr, CacheGeometry, CacheModel, CacheStats, ConfigError, HitWhere, LruDir,
    LruSet, MemRecord, Result,
};

/// Sizing knobs for the SHT and OUT tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// SHT capacity as a fraction of the line count (paper: 3/8).
    pub sht_fraction: f64,
    /// OUT capacity as a fraction of the line count (paper: 4/16 = 1/4).
    pub out_fraction: f64,
    /// Search window (sets on each side of the primary set) when looking
    /// for a nearby disposable line to host a displaced block.
    pub relocation_window: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            sht_fraction: 3.0 / 8.0,
            out_fraction: 4.0 / 16.0,
            relocation_window: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
    /// True if this line holds a block *out of position* (reachable only
    /// through the OUT directory).
    out_of_position: bool,
}

impl Line {
    fn empty() -> Self {
        Line {
            block: 0,
            valid: false,
            dirty: false,
            out_of_position: false,
        }
    }
}

/// LRU set-reference history table, with O(1) touch (see [`LruSet`]).
type Sht = LruSet;

/// LRU out-of-position directory: block -> set, with O(log n)
/// eviction (see [`LruDir`]).
type OutDir = LruDir<BlockAddr>;

/// The adaptive group-associative cache.
pub struct AdaptiveGroupCache {
    geom: CacheGeometry,
    lines: Vec<Line>,
    sht: Sht,
    out: OutDir,
    stats: CacheStats,
    window: usize,
    name: String,
}

impl AdaptiveGroupCache {
    /// Paper-sized tables (SHT 3/8, OUT 1/4 of the line count).
    pub fn new(geom: CacheGeometry) -> Result<Self> {
        Self::with_config(geom, AdaptiveConfig::default())
    }

    /// Custom table sizing (ablation `ablation_adaptive_tables`).
    pub fn with_config(geom: CacheGeometry, cfg: AdaptiveConfig) -> Result<Self> {
        if geom.ways() != 1 {
            return Err(ConfigError::Mismatch {
                what: "adaptive group-associative cache extends a direct-mapped cache".into(),
            });
        }
        if !(0.0..=1.0).contains(&cfg.sht_fraction) || !(0.0..=1.0).contains(&cfg.out_fraction) {
            return Err(ConfigError::InvalidParameter {
                what: "table fractions must lie in [0, 1]".into(),
            });
        }
        let n = geom.num_sets();
        let sht_cap = ((n as f64 * cfg.sht_fraction).round() as usize).max(1);
        let out_cap = ((n as f64 * cfg.out_fraction).round() as usize).max(1);
        Ok(AdaptiveGroupCache {
            geom,
            lines: vec![Line::empty(); n],
            sht: Sht::new(n, sht_cap),
            out: OutDir::new(out_cap),
            stats: CacheStats::new(n),
            window: cfg.relocation_window.max(1),
            name: format!("adaptive_cache(sht={sht_cap},out={out_cap})"),
        })
    }

    #[inline]
    fn primary_of(&self, block: BlockAddr) -> usize {
        self.geom.conventional_index(self.geom.block_base(block))
    }

    /// True if `block` is resident anywhere (primary or out-of-position).
    pub fn contains_block(&mut self, block: BlockAddr) -> bool {
        let p = self.primary_of(block);
        if self.lines[p].valid && self.lines[p].block == block {
            return true;
        }
        if let Some(s) = self.out.get(block) {
            return self.lines[s].valid && self.lines[s].block == block;
        }
        false
    }

    /// Current number of OUT entries (tests/introspection).
    pub fn out_len(&self) -> usize {
        self.out.len()
    }

    /// Finds a disposable line near `around` (invalid, or valid with its
    /// set outside the SHT and not already hosting an out-of-position
    /// block). Searches outward up to the configured window.
    fn find_disposable_near(&self, around: usize, exclude: usize) -> Option<usize> {
        let n = self.lines.len();
        for d in 1..=self.window {
            for cand in [(around + d) % n, (around + n - d % n) % n] {
                if cand == exclude {
                    continue;
                }
                let l = &self.lines[cand];
                if !l.valid {
                    unicache_obs::observe(unicache_obs::HistEvent::AdaptiveRelocSearch, d as u64);
                    return Some(cand);
                }
                if !self.sht.contains(cand) && !l.out_of_position {
                    unicache_obs::observe(unicache_obs::HistEvent::AdaptiveRelocSearch, d as u64);
                    return Some(cand);
                }
            }
        }
        None
    }

    /// Drops the block hosted out-of-position at `set` (when its OUT entry
    /// is evicted, the line becomes unreachable and must be invalidated to
    /// preserve the single-residency invariant).
    fn invalidate_out_line(&mut self, block: BlockAddr, set: usize) {
        let l = &mut self.lines[set];
        if l.valid && l.block == block && l.out_of_position {
            *l = Line::empty();
        }
    }
}

impl CacheModel for AdaptiveGroupCache {
    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn access(&mut self, rec: MemRecord) -> AccessResult {
        self.access_block(self.geom.block_addr(rec.addr), rec.kind.is_write())
    }

    fn access_block(&mut self, block: u64, is_write: bool) -> AccessResult {
        if is_write {
            self.stats.record_write();
        }
        unicache_obs::count(unicache_obs::Event::AdaptiveProbe);
        let p = self.primary_of(block);

        // Primary probe (OUT is probed in parallel in hardware; a primary
        // hit never waits on it).
        if self.lines[p].valid && self.lines[p].block == block {
            if is_write {
                self.lines[p].dirty = true;
            }
            self.sht.touch(p);
            self.stats.record(p, HitWhere::Primary);
            return AccessResult {
                where_hit: HitWhere::Primary,
                set: p,
                evicted: None,
            };
        }

        // OUT probe: the block may live out of position.
        if let Some(alt) = self.out.get(block) {
            if self.lines[alt].valid && self.lines[alt].block == block {
                unicache_obs::count(unicache_obs::Event::AdaptiveOutHit);
                // Swap back toward the primary position to shorten future
                // hits; the displaced primary resident takes the alternate
                // slot (its OUT entry replaces ours).
                let mut incoming = self.lines[alt];
                incoming.out_of_position = false;
                if is_write {
                    incoming.dirty = true;
                }
                let outgoing = self.lines[p];
                self.out.remove(block);
                self.lines[p] = incoming;
                if outgoing.valid {
                    self.lines[alt] = Line {
                        out_of_position: true,
                        ..outgoing
                    };
                    if let Some((evb, evs)) = self.out.insert(outgoing.block, alt) {
                        self.invalidate_out_line(evb, evs);
                    }
                } else {
                    self.lines[alt] = Line::empty();
                }
                self.sht.touch(p);
                self.stats.record(p, HitWhere::Secondary);
                unicache_obs::count(unicache_obs::Event::AdaptiveRelocation);
                self.stats.record_relocation();
                return AccessResult {
                    where_hit: HitWhere::Secondary,
                    set: p,
                    evicted: None,
                };
            }
            // Stale entry: the alternate line was reclaimed. Clean up.
            unicache_obs::count(unicache_obs::Event::AdaptiveOutStale);
            self.out.remove(block);
        }

        // Miss. Decide the fate of the primary resident.
        let resident = self.lines[p];
        let disposable = !resident.valid || !self.sht.contains(p) || resident.out_of_position;
        let mut evicted = None;
        let mut where_hit = HitWhere::MissDirect;

        if resident.valid {
            if disposable {
                // Replace in place; OUT untouched (the paper: "the OUT
                // table is not consulted when the disposable bit is set").
                if resident.out_of_position {
                    self.out.remove(resident.block);
                }
                evicted = Some(resident.block);
                self.stats.record_eviction(p);
            } else {
                // Keep the MRU-set victim: move it to a nearby disposable
                // line and register it in OUT.
                unicache_obs::count(unicache_obs::Event::AdaptiveShtHit);
                where_hit = HitWhere::MissAfterProbe;
                if let Some(host) = self.find_disposable_near(p, p) {
                    let hosted = self.lines[host];
                    if hosted.valid {
                        if hosted.out_of_position {
                            self.out.remove(hosted.block);
                        }
                        evicted = Some(hosted.block);
                        self.stats.record_eviction(host);
                    }
                    self.lines[host] = Line {
                        out_of_position: true,
                        ..resident
                    };
                    if let Some((evb, evs)) = self.out.insert(resident.block, host) {
                        self.invalidate_out_line(evb, evs);
                    }
                    unicache_obs::count(unicache_obs::Event::AdaptiveRelocation);
                    self.stats.record_relocation();
                } else {
                    // No disposable line in the window: fall back to plain
                    // eviction.
                    evicted = Some(resident.block);
                    self.stats.record_eviction(p);
                }
            }
        }

        // Fill the primary slot. Any stale out-of-position copy of the
        // incoming block was already cleaned above.
        self.lines[p] = Line {
            block,
            valid: true,
            dirty: is_write,
            out_of_position: false,
        };
        self.sht.touch(p);
        self.stats.record(p, where_hit);
        AccessResult {
            where_hit,
            set: p,
            evicted,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::empty();
        }
        self.sht.clear();
        self.out.clear();
        self.stats.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Fusable only through the default (monomorphized) chunk loop: every
/// access consults and updates the SHT/OUT directories, so the per-record
/// state machine has no separable index phase to vectorize. The fused
/// pass still removes the per-record virtual dispatch and shares the
/// decoded stream with the other lanes.
impl unicache_core::FusedLane for AdaptiveGroupCache {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn geom(sets: usize) -> CacheGeometry {
        CacheGeometry::from_sets(sets, 32, 1).unwrap()
    }

    fn read_block(b: u64) -> MemRecord {
        MemRecord::read(b * 32)
    }

    #[test]
    fn construction() {
        let c = AdaptiveGroupCache::new(geom(1024)).unwrap();
        assert_eq!(c.name(), "adaptive_cache(sht=384,out=256)");
        assert!(AdaptiveGroupCache::new(CacheGeometry::from_sets(8, 32, 2).unwrap()).is_err());
        let bad = AdaptiveConfig {
            sht_fraction: 1.5,
            ..Default::default()
        };
        assert!(AdaptiveGroupCache::with_config(geom(8), bad).is_err());
    }

    #[test]
    fn hot_conflict_pair_is_rescued() {
        let mut c = AdaptiveGroupCache::new(geom(64)).unwrap();
        // Make set 0 MRU-hot, then conflict: 0 and 64 share set 0.
        c.access(read_block(0));
        c.access(read_block(0));
        let r = c.access(read_block(64));
        // Set 0 is in SHT -> resident 0 is non-disposable -> relocated.
        assert_eq!(r.where_hit, HitWhere::MissAfterProbe);
        assert!(c.contains_block(0), "victim kept out of position");
        assert!(c.contains_block(64));
        // Access to 0 now hits through OUT (secondary).
        let r = c.access(read_block(0));
        assert_eq!(r.where_hit, HitWhere::Secondary);
        // After the swap-back, 0 is primary again.
        let r = c.access(read_block(0));
        assert_eq!(r.where_hit, HitWhere::Primary);
    }

    #[test]
    fn cold_set_victim_is_just_replaced() {
        let mut c = AdaptiveGroupCache::new(geom(64)).unwrap();
        // Touch block 5 once, then flood the SHT with other sets so set 5
        // falls out of the MRU table.
        c.access(read_block(5));
        for b in 6..48u64 {
            c.access(read_block(b));
        }
        assert!(!c.sht.contains(5));
        let before = c.out_len();
        let r = c.access(read_block(64 + 5)); // conflicts with block 5
        assert_eq!(r.where_hit, HitWhere::MissDirect);
        assert_eq!(r.evicted, Some(5));
        assert_eq!(c.out_len(), before, "OUT untouched for disposable victim");
        assert!(!c.contains_block(5));
    }

    #[test]
    fn out_directory_capacity_is_bounded() {
        let cfg = AdaptiveConfig {
            sht_fraction: 1.0, // everything MRU -> every victim relocates
            out_fraction: 4.0 / 64.0,
            relocation_window: 64,
        };
        let mut c = AdaptiveGroupCache::with_config(geom(64), cfg).unwrap();
        // Generate many conflicting fills.
        for i in 0..200u64 {
            c.access(read_block(i % 8 + 64 * (i / 8)));
        }
        assert!(c.out_len() <= 4, "OUT grew to {}", c.out_len());
    }

    #[test]
    fn single_residency_invariant_under_random_traffic() {
        let mut c = AdaptiveGroupCache::new(geom(32)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let blocks: Vec<u64> = (0..5000).map(|_| rng.gen_range(0u64..256)).collect();
        for (i, &b) in blocks.iter().enumerate() {
            c.access(read_block(b));
            if i % 97 == 0 {
                // Count copies of a sample of blocks.
                for probe in 0..256u64 {
                    let copies = c
                        .lines
                        .iter()
                        .filter(|l| l.valid && l.block == probe)
                        .count();
                    assert!(copies <= 1, "block {probe} resident {copies}x at step {i}");
                }
            }
        }
        // Every OUT entry points at a line holding its block.
        let entries: Vec<(u64, usize)> = c.out.entries().collect();
        for (b, s) in entries {
            assert!(c.lines[s].valid && c.lines[s].block == b && c.lines[s].out_of_position);
        }
    }

    #[test]
    fn beats_direct_mapped_on_hot_conflicts() {
        use unicache_sim::CacheBuilder;
        let g = geom(64);
        let mut adaptive = AdaptiveGroupCache::new(g).unwrap();
        let mut dm = CacheBuilder::new(g).build().unwrap();
        // Two hot blocks in the same set, plus background traffic.
        let mut rng = StdRng::seed_from_u64(5);
        let mut trace = Vec::new();
        for _ in 0..4000 {
            trace.push(read_block(0));
            trace.push(read_block(64));
            if rng.gen_bool(0.3) {
                trace.push(read_block(rng.gen_range(1u64..40)));
            }
        }
        for &r in &trace {
            adaptive.access(r);
            dm.access(r);
        }
        assert!(
            adaptive.stats().miss_rate() < dm.stats().miss_rate() * 0.5,
            "adaptive {} vs dm {}",
            adaptive.stats().miss_rate(),
            dm.stats().miss_rate()
        );
    }

    #[test]
    fn flush_clears_tables() {
        let mut c = AdaptiveGroupCache::new(geom(32)).unwrap();
        c.access(read_block(0));
        c.access(read_block(0));
        c.access(read_block(32));
        c.flush();
        assert_eq!(c.out_len(), 0);
        assert!(!c.contains_block(0));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn sht_lru_behaviour() {
        let mut sht = Sht::new(8, 3);
        sht.touch(0);
        sht.touch(1);
        sht.touch(2);
        assert!(sht.contains(0) && sht.contains(1) && sht.contains(2));
        sht.touch(0); // refresh 0
        sht.touch(3); // evicts 1 (LRU)
        assert!(sht.contains(0) && !sht.contains(1) && sht.contains(2) && sht.contains(3));
    }

    #[test]
    fn out_dir_lru_behaviour() {
        let mut out = OutDir::new(2);
        assert_eq!(out.insert(10, 1), None);
        assert_eq!(out.insert(20, 2), None);
        assert_eq!(out.get(10), Some(1)); // refresh 10
        let ev = out.insert(30, 3);
        assert_eq!(ev, Some((20, 2)), "20 was LRU");
        assert_eq!(out.get(20), None);
        assert_eq!(out.remove(10), Some(1));
        assert_eq!(out.len(), 1);
    }
}
