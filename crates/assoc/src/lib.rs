//! # unicache-assoc
//!
//! Programmable-associativity cache organisations — the paper's Section III.
//!
//! | Paper § | Scheme | Type |
//! |---------|--------|------|
//! | III.A   | column-associative cache (Agarwal & Pudar) | [`column::ColumnAssociativeCache`] |
//! | III.B   | adaptive group-associative cache (Peir et al.) | [`adaptive::AdaptiveGroupCache`] |
//! | III.C   | B-cache / balanced cache (Zhang) | [`bcache::BCache`] |
//! | §1.2, Fig. 3 | partner-index cache (the paper's illustrative scheme) | [`partner::PartnerIndexCache`] |
//! | §1.2 (extension) | partner *chains* — linked lists of partner lines | [`chain::PartnerChainCache`] |
//! | extension | 2-way skewed-associative cache (Seznec) | [`skewed::SkewedCache`] |
//!
//! All implement [`unicache_core::CacheModel`] and record the hit-location
//! taxonomy ([`unicache_core::HitWhere`]) that the AMAT formulas in
//! `unicache-timing` consume. The column-associative cache is generic over
//! its primary [`unicache_core::IndexFunction`], enabling the paper's
//! Fig. 8 hybrid study (column-associative + XOR / odd-multiplier /
//! prime-modulo).

pub mod adaptive;
pub mod bcache;
pub mod chain;
pub mod column;
pub mod partner;
pub mod skewed;

pub use adaptive::{AdaptiveConfig, AdaptiveGroupCache};
pub use bcache::{BCache, BCacheConfig};
pub use chain::{ChainConfig, PartnerChainCache};
pub use column::ColumnAssociativeCache;
pub use partner::{PartnerConfig, PartnerIndexCache};
pub use skewed::SkewedCache;
