//! Partner-index cache — the paper's illustrative programmable-associativity
//! design (Section 1.2, Figure 3).
//!
//! Each line carries an **L** bit ("linked") and a **partner index**. Hot
//! sets (those collecting the most misses) are dynamically linked to cold
//! sets (those seeing the fewest accesses); a linked pair behaves like a
//! 2-entry set: the partner is probed after a primary miss, and a displaced
//! primary resident spills into the partner instead of being evicted.
//!
//! The paper sketches both profiling-based and dynamic matching; we
//! implement the dynamic variant: every `epoch` accesses, the per-set
//! access/miss counters from the finished epoch are ranked and the top
//! `max_pairs` missing sets are paired with the least-accessed sets.

use serde::{Deserialize, Serialize};
use unicache_core::{
    AccessResult, BlockAddr, CacheGeometry, CacheModel, CacheStats, ConfigError, HitWhere,
    MemRecord, Result,
};

/// Dynamic-pairing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartnerConfig {
    /// Accesses between re-pairing decisions.
    pub epoch: u64,
    /// Maximum number of hot/cold pairs maintained.
    pub max_pairs: usize,
}

impl Default for PartnerConfig {
    fn default() -> Self {
        PartnerConfig {
            epoch: 8192,
            max_pairs: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
    /// L bit: this set has a partner.
    linked: bool,
    /// Partner set index (meaningful when `linked`).
    partner: usize,
    /// True if this set is serving as someone's partner (cold side).
    lent: bool,
}

impl Line {
    fn empty() -> Self {
        Line {
            block: 0,
            valid: false,
            dirty: false,
            linked: false,
            partner: 0,
            lent: false,
        }
    }
}

/// The partner-index cache.
pub struct PartnerIndexCache {
    geom: CacheGeometry,
    lines: Vec<Line>,
    stats: CacheStats,
    cfg: PartnerConfig,
    // Epoch counters (reset at each re-pairing).
    epoch_accesses: Vec<u64>,
    epoch_misses: Vec<u64>,
    since_repair: u64,
    name: String,
}

impl PartnerIndexCache {
    /// Default pairing policy.
    pub fn new(geom: CacheGeometry) -> Result<Self> {
        Self::with_config(geom, PartnerConfig::default())
    }

    /// Custom epoch/pair-count.
    pub fn with_config(geom: CacheGeometry, cfg: PartnerConfig) -> Result<Self> {
        if geom.ways() != 1 {
            return Err(ConfigError::Mismatch {
                what: "partner-index cache extends a direct-mapped cache".into(),
            });
        }
        if cfg.epoch == 0 {
            return Err(ConfigError::OutOfRange {
                what: "partner epoch",
                expected: ">= 1".into(),
                got: 0,
            });
        }
        let n = geom.num_sets();
        Ok(PartnerIndexCache {
            geom,
            lines: vec![Line::empty(); n],
            stats: CacheStats::new(n),
            cfg,
            epoch_accesses: vec![0; n],
            epoch_misses: vec![0; n],
            since_repair: 0,
            name: format!("partner_index(epoch={},pairs={})", cfg.epoch, cfg.max_pairs),
        })
    }

    /// Current partner of a set, if linked.
    pub fn partner_of(&self, set: usize) -> Option<usize> {
        let l = &self.lines[set];
        if l.linked {
            Some(l.partner)
        } else {
            None
        }
    }

    /// Number of linked pairs currently active.
    pub fn active_pairs(&self) -> usize {
        self.lines.iter().filter(|l| l.linked).count()
    }

    /// The current `(hot, cold)` pairs, hot set ascending. `uca check`
    /// drives a cache and then verifies these form a fixed-point-free
    /// partial matching: no set paired with itself, no set on both sides,
    /// no cold set lent to two hot sets.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.linked)
            .map(|(s, l)| (s, l.partner))
            .collect()
    }

    /// True if `set` is currently lent out as some hot set's partner.
    pub fn is_lent(&self, set: usize) -> bool {
        self.lines[set].lent
    }

    /// True if `block` is resident at its primary set or its partner.
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        let p = (block & (self.lines.len() as u64 - 1)) as usize;
        if self.lines[p].valid && self.lines[p].block == block {
            return true;
        }
        if self.lines[p].linked {
            let q = self.lines[p].partner;
            return self.lines[q].valid && self.lines[q].block == block;
        }
        false
    }

    /// Re-computes hot/cold pairings from the finished epoch's counters.
    fn repartner(&mut self) {
        let n = self.lines.len();
        // Dissolve existing links. A lent set may hold a block spilled from
        // its hot partner; once the link is gone that copy is unreachable
        // and — worse — the block could be refilled at its primary set,
        // creating a second copy. Invalidate foreign residents first.
        let mask = n as u64 - 1;
        for (set, l) in self.lines.iter_mut().enumerate() {
            if l.valid && (l.block & mask) as usize != set {
                *l = Line::empty();
            } else {
                l.linked = false;
                l.lent = false;
            }
        }
        // Hot sets: most epoch misses (must have at least one miss).
        let mut by_misses: Vec<usize> = (0..n).collect();
        by_misses.sort_by_key(|&s| std::cmp::Reverse(self.epoch_misses[s]));
        // Cold sets: fewest epoch accesses.
        let mut by_accesses: Vec<usize> = (0..n).collect();
        by_accesses.sort_by_key(|&s| self.epoch_accesses[s]);

        let mut taken = vec![false; n];
        let mut cold_iter = by_accesses.into_iter();
        let mut pairs = 0usize;
        for &hot in by_misses.iter() {
            if pairs >= self.cfg.max_pairs || self.epoch_misses[hot] == 0 {
                break;
            }
            if taken[hot] {
                continue;
            }
            // First untaken cold set that isn't the hot set itself and is
            // genuinely colder than the hot set.
            let cold = cold_iter.by_ref().find(|&c| {
                !taken[c] && c != hot && self.epoch_accesses[c] < self.epoch_misses[hot]
            });
            let Some(cold) = cold else { break };
            taken[hot] = true;
            taken[cold] = true;
            self.lines[hot].linked = true;
            self.lines[hot].partner = cold;
            self.lines[cold].lent = true;
            pairs += 1;
        }
        unicache_obs::count(unicache_obs::Event::PartnerRepartner);
        unicache_obs::count_by(unicache_obs::Event::PartnerPairFormed, pairs as u64);
        unicache_obs::observe(unicache_obs::HistEvent::PartnerEpochPairs, pairs as u64);
        self.epoch_accesses.iter_mut().for_each(|c| *c = 0);
        self.epoch_misses.iter_mut().for_each(|c| *c = 0);
    }
}

impl CacheModel for PartnerIndexCache {
    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn access(&mut self, rec: MemRecord) -> AccessResult {
        self.access_block(self.geom.block_addr(rec.addr), rec.kind.is_write())
    }

    fn access_block(&mut self, block: u64, is_write: bool) -> AccessResult {
        if is_write {
            self.stats.record_write();
        }
        unicache_obs::count(unicache_obs::Event::PartnerProbe);
        let p = (block & (self.lines.len() as u64 - 1)) as usize;
        self.epoch_accesses[p] += 1;
        self.since_repair += 1;

        let mut outcome;
        let mut evicted = None;

        if self.lines[p].valid && self.lines[p].block == block {
            if is_write {
                self.lines[p].dirty = true;
            }
            outcome = HitWhere::Primary;
        } else if self.lines[p].linked {
            unicache_obs::count(unicache_obs::Event::PartnerSecondProbe);
            let q = self.lines[p].partner;
            if self.lines[q].valid && self.lines[q].block == block {
                // Partner hit: swap so the hot block moves to the primary
                // slot (same promotion idea as column-associative).
                let mut incoming = self.lines[q];
                if is_write {
                    incoming.dirty = true;
                }
                let outgoing = self.lines[p];
                self.lines[p].block = incoming.block;
                self.lines[p].valid = true;
                self.lines[p].dirty = incoming.dirty;
                if outgoing.valid {
                    self.lines[q].block = outgoing.block;
                    self.lines[q].valid = true;
                    self.lines[q].dirty = outgoing.dirty;
                } else {
                    self.lines[q].valid = false;
                    self.lines[q].dirty = false;
                }
                self.stats.record_relocation();
                outcome = HitWhere::Secondary;
            } else {
                // Miss in both: spill the primary resident to the partner.
                outcome = HitWhere::MissAfterProbe;
                self.epoch_misses[p] += 1;
                let displaced = self.lines[p];
                if displaced.valid {
                    unicache_obs::count(unicache_obs::Event::PartnerLend);
                    if self.lines[q].valid {
                        evicted = Some(self.lines[q].block);
                        self.stats.record_eviction(q);
                    }
                    self.lines[q].block = displaced.block;
                    self.lines[q].valid = true;
                    self.lines[q].dirty = displaced.dirty;
                    self.stats.record_relocation();
                }
                self.lines[p].block = block;
                self.lines[p].valid = true;
                self.lines[p].dirty = is_write;
            }
        } else {
            // Unlinked set: plain direct-mapped replacement.
            outcome = HitWhere::MissDirect;
            self.epoch_misses[p] += 1;
            if self.lines[p].valid {
                evicted = Some(self.lines[p].block);
                self.stats.record_eviction(p);
            }
            self.lines[p].block = block;
            self.lines[p].valid = true;
            self.lines[p].dirty = is_write;
        }

        // On a partner hit the primary slot was filled by the swap even if
        // previously invalid; normalize outcome bookkeeping.
        if outcome == HitWhere::Secondary && !self.lines[p].valid {
            outcome = HitWhere::Primary; // unreachable, defensive
        }
        self.stats.record(p, outcome);

        if self.since_repair >= self.cfg.epoch {
            self.since_repair = 0;
            self.repartner();
        }
        AccessResult {
            where_hit: outcome,
            set: p,
            evicted,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::empty();
        }
        self.epoch_accesses.iter_mut().for_each(|c| *c = 0);
        self.epoch_misses.iter_mut().for_each(|c| *c = 0);
        self.since_repair = 0;
        self.stats.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Fused fast path via the default (monomorphized) chunk loop: the
/// primary index is a plain mask (`block & (sets-1)`), already inline in
/// `access_block`, so there is no separate index phase to vectorize —
/// fusing removes the per-record virtual dispatch, which is the entire
/// overhead of this scheme's batched path.
impl unicache_core::FusedLane for PartnerIndexCache {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn geom(sets: usize) -> CacheGeometry {
        CacheGeometry::from_sets(sets, 32, 1).unwrap()
    }

    fn read_block(b: u64) -> MemRecord {
        MemRecord::read(b * 32)
    }

    fn cfg(epoch: u64, pairs: usize) -> PartnerConfig {
        PartnerConfig {
            epoch,
            max_pairs: pairs,
        }
    }

    #[test]
    fn validation() {
        assert!(PartnerIndexCache::new(geom(16)).is_ok());
        assert!(PartnerIndexCache::new(CacheGeometry::from_sets(16, 32, 2).unwrap()).is_err());
        assert!(PartnerIndexCache::with_config(geom(16), cfg(0, 4)).is_err());
    }

    #[test]
    fn behaves_direct_mapped_before_first_epoch() {
        let mut c = PartnerIndexCache::with_config(geom(8), cfg(1_000_000, 4)).unwrap();
        c.access(read_block(0));
        let r = c.access(read_block(8)); // conflict, no partner yet
        assert_eq!(r.where_hit, HitWhere::MissDirect);
        assert_eq!(r.evicted, Some(0));
        assert_eq!(c.active_pairs(), 0);
    }

    #[test]
    fn hot_set_gets_a_partner_and_conflict_is_absorbed() {
        let mut c = PartnerIndexCache::with_config(geom(8), cfg(64, 4)).unwrap();
        // Epoch 1: hammer the 0/8 conflict so set 0 accumulates misses.
        for _ in 0..32 {
            c.access(read_block(0));
            c.access(read_block(8));
        }
        assert!(c.active_pairs() >= 1, "set 0 should be linked");
        assert!(c.partner_of(0).is_some());
        // Steady state after pairing: the pair coexists.
        c.access(read_block(0));
        c.access(read_block(8));
        let m0 = c.stats().misses();
        for _ in 0..20 {
            assert!(c.access(read_block(0)).is_hit());
            assert!(c.access(read_block(8)).is_hit());
        }
        assert_eq!(c.stats().misses(), m0, "no further conflict misses");
        assert!(c.stats().secondary_hits > 0);
    }

    #[test]
    fn partner_is_a_cold_set() {
        let mut c = PartnerIndexCache::with_config(geom(16), cfg(128, 2)).unwrap();
        // Heat sets 0 (conflicts) and 1..4 (plain hits); sets 8..16 cold.
        for _ in 0..48 {
            c.access(read_block(0));
            c.access(read_block(16));
            for b in 1..5u64 {
                c.access(read_block(b));
            }
        }
        let p = c.partner_of(0).expect("set 0 linked");
        assert!(p >= 5, "partner {p} should be one of the cold sets");
    }

    #[test]
    fn repartnering_dissolves_old_links() {
        let mut c = PartnerIndexCache::with_config(geom(8), cfg(32, 4)).unwrap();
        for _ in 0..16 {
            c.access(read_block(0));
            c.access(read_block(8));
        }
        assert!(c.active_pairs() >= 1);
        // Next epoch: uniform traffic, no misses to speak of -> links
        // dissolve at the next boundary.
        for i in 0..64u64 {
            c.access(read_block(i % 8));
        }
        assert_eq!(c.active_pairs(), 0);
    }

    #[test]
    fn single_residency_under_random_traffic() {
        let mut c = PartnerIndexCache::with_config(geom(16), cfg(100, 8)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for step in 0..4000 {
            c.access(read_block(rng.gen_range(0u64..96)));
            if step % 131 == 0 {
                for probe in 0..96u64 {
                    let copies = c
                        .lines
                        .iter()
                        .filter(|l| l.valid && l.block == probe)
                        .count();
                    assert!(copies <= 1, "block {probe}: {copies} copies @ {step}");
                }
            }
        }
    }

    #[test]
    fn flush_dissolves_everything() {
        let mut c = PartnerIndexCache::with_config(geom(8), cfg(16, 4)).unwrap();
        for _ in 0..20 {
            c.access(read_block(0));
            c.access(read_block(8));
        }
        c.flush();
        assert_eq!(c.active_pairs(), 0);
        assert!(!c.contains_block(0));
        assert_eq!(c.stats().accesses(), 0);
    }
}
