//! B-cache — Zhang's *balanced cache* (paper Section III.C; ISCA 2006).
//!
//! The combined index is split into **NPI** (non-programmable index) bits,
//! decoded conventionally, and **PI** (programmable index) bits, matched by
//! per-line programmable decoders. The paper's two parameters:
//!
//! * mapping factor `MF = 2^(PI+NPI) / 2^OI` (Eq. 6) — how many *logical*
//!   indexes share the cache's physical lines;
//! * B-cache associativity `BAS = 2^OI / 2^NPI` (Eq. 7) — lines per
//!   cluster (the paper's configuration: `MF = 2`, `BAS = 8`, so a 1024-line
//!   direct-mapped cache decodes 11 index bits into 128 clusters of 8).
//!
//! Behaviourally, a lookup selects the cluster via the NPI bits; the PI
//! bits must match a line's programmable decoder; on a miss the
//! cluster-wide LRU line is refilled and its decoder reprogrammed. Since a
//! resident block's decoder always equals its own PI bits, hit/miss
//! behaviour equals a `BAS`-way associative cache over the NPI index — the
//! basis for Zhang's observation (quoted in the paper) that this B-cache
//! "achieves the same miss rate as an 8-way set associative cache" while
//! keeping a direct-mapped access path (hence `HitWhere::Primary` for all
//! hits and `MissDirect` for all misses: there is no second probe).
//!
//! Per-set statistics are charged to **physical lines** (cluster × way), so
//! the uniformity figures (kurtosis/skewness, Figs. 11–12) compare directly
//! against the baseline's 1024 per-set counters.

use serde::{Deserialize, Serialize};
use unicache_core::{
    AccessResult, BlockAddr, CacheGeometry, CacheModel, CacheStats, ConfigError, HitWhere,
    MemRecord, Result,
};

/// B-cache shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BCacheConfig {
    /// Mapping factor `MF` (power of two ≥ 1). The paper/Zhang use 2.
    pub mapping_factor: u32,
    /// Cluster associativity `BAS` (power of two ≥ 1, ≤ line count).
    /// The paper/Zhang use 8.
    pub bas: u32,
}

impl Default for BCacheConfig {
    fn default() -> Self {
        BCacheConfig {
            mapping_factor: 2,
            bas: 8,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
    /// Programmable-decoder contents (the PI value this line answers to).
    pi: u64,
    stamp: u64,
}

impl Line {
    fn empty() -> Self {
        Line {
            block: 0,
            valid: false,
            dirty: false,
            pi: 0,
            stamp: 0,
        }
    }
}

/// Zhang's balanced cache over a direct-mapped line array.
pub struct BCache {
    geom: CacheGeometry,
    lines: Vec<Line>,
    stats: CacheStats,
    clusters: usize,
    bas: usize,
    npi_bits: u32,
    pi_bits: u32,
    clock: u64,
    name: String,
}

impl BCache {
    /// Paper configuration: `MF = 2`, `BAS = 8`.
    pub fn new(geom: CacheGeometry) -> Result<Self> {
        Self::with_config(geom, BCacheConfig::default())
    }

    /// Custom shape (ablation `ablation_bcache_mf`).
    pub fn with_config(geom: CacheGeometry, cfg: BCacheConfig) -> Result<Self> {
        if geom.ways() != 1 {
            return Err(ConfigError::Mismatch {
                what: "B-cache reorganises a direct-mapped cache".into(),
            });
        }
        if !cfg.mapping_factor.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "mapping factor",
                value: cfg.mapping_factor as u64,
            });
        }
        if !cfg.bas.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "B-cache associativity",
                value: cfg.bas as u64,
            });
        }
        let lines = geom.num_sets();
        if cfg.bas as usize > lines {
            return Err(ConfigError::OutOfRange {
                what: "B-cache associativity",
                expected: format!("<= {lines}"),
                got: cfg.bas as u64,
            });
        }
        let oi = unicache_core::log2(lines as u64);
        let npi_bits = oi - unicache_core::log2(cfg.bas as u64);
        let pi_bits =
            unicache_core::log2(cfg.mapping_factor as u64) + unicache_core::log2(cfg.bas as u64);
        let clusters = lines / cfg.bas as usize;
        Ok(BCache {
            geom,
            lines: vec![Line::empty(); lines],
            stats: CacheStats::new(lines),
            clusters,
            bas: cfg.bas as usize,
            npi_bits,
            pi_bits,
            clock: 0,
            name: format!("b_cache(MF={},BAS={})", cfg.mapping_factor, cfg.bas),
        })
    }

    /// Number of clusters (`2^NPI`).
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Index bits decoded conventionally.
    pub fn npi_bits(&self) -> u32 {
        self.npi_bits
    }

    /// Programmable index bits.
    pub fn pi_bits(&self) -> u32 {
        self.pi_bits
    }

    /// Lines per cluster (`BAS`).
    pub fn bas(&self) -> usize {
        self.bas
    }

    /// The cluster a block's NPI bits decode to.
    pub fn cluster_of(&self, block: BlockAddr) -> usize {
        self.split(block).0
    }

    /// The PI value a block's programmable-decoder match uses.
    pub fn pi_of(&self, block: BlockAddr) -> u64 {
        self.split(block).1
    }

    #[inline]
    fn split(&self, block: BlockAddr) -> (usize, u64) {
        let cluster = (block & (self.clusters as u64 - 1)) as usize;
        let pi = (block >> self.npi_bits) & ((1u64 << self.pi_bits) - 1);
        (cluster, pi)
    }

    /// True if the block is resident.
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        let (cluster, _) = self.split(block);
        let base = cluster * self.bas;
        self.lines[base..base + self.bas]
            .iter()
            .any(|l| l.valid && l.block == block)
    }
}

impl CacheModel for BCache {
    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn access(&mut self, rec: MemRecord) -> AccessResult {
        self.access_block(self.geom.block_addr(rec.addr), rec.kind.is_write())
    }

    fn access_block(&mut self, block: u64, is_write: bool) -> AccessResult {
        if is_write {
            self.stats.record_write();
        }
        self.clock += 1;
        unicache_obs::count(unicache_obs::Event::BcacheProbe);
        let (cluster, pi) = self.split(block);
        let base = cluster * self.bas;

        // The programmable decoders select matching lines; a hit also
        // matches the stored block (tag).
        for w in 0..self.bas {
            let l = &mut self.lines[base + w];
            if l.valid && l.pi == pi && l.block == block {
                l.stamp = self.clock;
                if is_write {
                    l.dirty = true;
                }
                unicache_obs::count_by(unicache_obs::Event::BcacheLineCompare, (w + 1) as u64);
                unicache_obs::observe(unicache_obs::HistEvent::BcacheWalk, (w + 1) as u64);
                self.stats.record(base + w, HitWhere::Primary);
                return AccessResult {
                    where_hit: HitWhere::Primary,
                    set: base + w,
                    evicted: None,
                };
            }
        }

        // Miss: victim = invalid line, else cluster-wide LRU (this is what
        // lets hot PI values borrow lines from cold ones — the balancing).
        unicache_obs::count_by(unicache_obs::Event::BcacheLineCompare, self.bas as u64);
        unicache_obs::observe(unicache_obs::HistEvent::BcacheWalk, self.bas as u64);
        unicache_obs::count(unicache_obs::Event::BcacheDecoderReprogram);
        // Manual first-minimum scan (same tie-break as `min_by_key`),
        // infallible since `bas >= 1` by construction.
        let mut victim = 0usize;
        let mut victim_key = (1u8, u64::MAX);
        for w in 0..self.bas {
            let l = &self.lines[base + w];
            let key = if l.valid { (1u8, l.stamp) } else { (0u8, 0) };
            if key < victim_key {
                victim = w;
                victim_key = key;
            }
        }
        let slot = base + victim;
        let old = self.lines[slot];
        if old.valid {
            self.stats.record_eviction(slot);
        }
        self.lines[slot] = Line {
            block,
            valid: true,
            dirty: is_write,
            pi,
            stamp: self.clock,
        };
        self.stats.record(slot, HitWhere::MissDirect);
        AccessResult {
            where_hit: HitWhere::MissDirect,
            set: slot,
            evicted: if old.valid { Some(old.block) } else { None },
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::empty();
        }
        self.clock = 0;
        self.stats.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Fusable only through the default (monomorphized) chunk loop: the
/// programmable decoders make each lookup a cluster walk whose result
/// feeds the next decoder reprogramming, so there is no precomputable
/// index vector. Fusing still removes the per-record virtual dispatch.
impl unicache_core::FusedLane for BCache {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use unicache_sim::CacheBuilder;

    fn geom(sets: usize) -> CacheGeometry {
        CacheGeometry::from_sets(sets, 32, 1).unwrap()
    }

    fn read_block(b: u64) -> MemRecord {
        MemRecord::read(b * 32)
    }

    #[test]
    fn paper_shape() {
        let b = BCache::new(geom(1024)).unwrap();
        assert_eq!(b.clusters(), 128);
        assert_eq!(b.npi_bits(), 7);
        assert_eq!(b.pi_bits(), 4); // log2(2) + log2(8)
        assert_eq!(b.name(), "b_cache(MF=2,BAS=8)");
    }

    #[test]
    fn validation() {
        assert!(BCache::with_config(
            geom(1024),
            BCacheConfig {
                mapping_factor: 3,
                bas: 8
            }
        )
        .is_err());
        assert!(BCache::with_config(
            geom(1024),
            BCacheConfig {
                mapping_factor: 2,
                bas: 7
            }
        )
        .is_err());
        assert!(BCache::with_config(
            geom(8),
            BCacheConfig {
                mapping_factor: 2,
                bas: 16
            }
        )
        .is_err());
        assert!(BCache::new(CacheGeometry::from_sets(64, 32, 2).unwrap()).is_err());
    }

    #[test]
    fn absorbs_direct_mapped_conflicts() {
        // Blocks 0 and 64 conflict in a 64-line direct-mapped cache; with
        // BAS=8 they share a cluster and coexist.
        let mut b = BCache::with_config(geom(64), BCacheConfig::default()).unwrap();
        b.access(read_block(0));
        b.access(read_block(64));
        assert!(b.contains_block(0));
        assert!(b.contains_block(64));
        for _ in 0..5 {
            assert!(b.access(read_block(0)).is_hit());
            assert!(b.access(read_block(64)).is_hit());
        }
        assert_eq!(b.stats().misses(), 2);
    }

    #[test]
    fn matches_equivalent_set_associative_miss_rate() {
        // Miss behaviour must equal an 8-way LRU cache with 2^NPI sets.
        let g = geom(256);
        let mut bc = BCache::new(g).unwrap();
        let eq_geom = CacheGeometry::from_sets(32, 32, 8).unwrap();
        let mut sa = CacheBuilder::new(eq_geom).build().unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20_000 {
            let r = read_block(rng.gen_range(0u64..1200));
            bc.access(r);
            sa.access(r);
        }
        assert_eq!(bc.stats().misses(), sa.stats().misses());
        assert_eq!(bc.stats().hits(), sa.stats().hits());
    }

    #[test]
    fn spreads_accesses_across_cluster_lines() {
        let mut b = BCache::with_config(geom(64), BCacheConfig::default()).unwrap();
        // Hammer 8 conflicting blocks (same cluster, different PI).
        for i in 0..8u64 {
            for _ in 0..100 {
                b.access(read_block(i * 64));
            }
        }
        let touched = b
            .stats()
            .per_set()
            .iter()
            .filter(|s| s.accesses > 0)
            .count();
        assert_eq!(touched, 8, "each conflicting block gets its own line");
    }

    #[test]
    fn lru_within_cluster() {
        let cfg = BCacheConfig {
            mapping_factor: 2,
            bas: 2,
        };
        let mut b = BCache::with_config(geom(4), cfg).unwrap();
        // Cluster 0 (even blocks of low bit 0): blocks 0, 2, 4 map there
        // (clusters = 2 -> cluster = block & 1).
        b.access(read_block(0));
        b.access(read_block(2));
        b.access(read_block(0)); // refresh 0
        let r = b.access(read_block(4)); // evicts LRU = 2
        assert_eq!(r.evicted, Some(2));
        assert!(b.contains_block(0));
        assert!(!b.contains_block(2));
    }

    #[test]
    fn all_outcomes_are_single_probe() {
        let mut b = BCache::new(geom(64)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let r = b.access(read_block(rng.gen_range(0u64..512)));
            assert!(matches!(
                r.where_hit,
                HitWhere::Primary | HitWhere::MissDirect
            ));
        }
        assert_eq!(b.stats().secondary_hits, 0);
        assert_eq!(b.stats().misses_after_probe, 0);
    }

    #[test]
    fn flush_resets() {
        let mut b = BCache::new(geom(64)).unwrap();
        b.access(read_block(1));
        b.flush();
        assert!(!b.contains_block(1));
        assert_eq!(b.stats().accesses(), 0);
    }
}
