//! Two-way skewed-associative cache (Seznec, ISCA 1993) — the classic
//! inter-bank-hashing alternative to the paper's techniques, included as
//! an extension comparison point: it attacks the same conflict problem as
//! Section II's hashes but with a *different hash per way*, so two blocks
//! that collide in bank 0 almost never collide in bank 1.
//!
//! Organisation: capacity is split into two banks of `sets/2` lines. Bank
//! 0 is indexed conventionally; bank 1 applies an XOR skew (tag bits folded
//! into the index, as in Seznec's `f1`). Both banks are probed in parallel
//! (all hits are [`HitWhere::Primary`] — no second-probe latency, unlike
//! the column-associative cache). Replacement: not-recently-used between
//! the two candidate lines.

use unicache_core::{
    AccessResult, BlockAddr, CacheGeometry, CacheModel, CacheStats, ConfigError, HitWhere,
    MemRecord, Result,
};

#[derive(Debug, Clone, Copy)]
struct Line {
    block: BlockAddr,
    valid: bool,
    dirty: bool,
    /// Recency bit for NRU replacement between the two candidates.
    recent: bool,
}

impl Line {
    fn empty() -> Self {
        Line {
            block: 0,
            valid: false,
            dirty: false,
            recent: false,
        }
    }
}

/// A 2-way skewed-associative cache over the same capacity as the paper's
/// direct-mapped baseline.
pub struct SkewedCache {
    geom: CacheGeometry,
    /// `lines[0]` = bank 0, `lines[1]` = bank 1; each `sets/2` entries.
    banks: [Vec<Line>; 2],
    bank_sets: usize,
    bank_bits: u32,
    stats: CacheStats,
    name: String,
}

impl SkewedCache {
    /// Builds a skewed cache from a direct-mapped geometry (its `sets`
    /// lines become 2 banks of `sets/2`).
    pub fn new(geom: CacheGeometry) -> Result<Self> {
        if geom.ways() != 1 {
            return Err(ConfigError::Mismatch {
                what: "skewed cache is organised over a direct-mapped line array".into(),
            });
        }
        if geom.num_sets() < 4 {
            return Err(ConfigError::OutOfRange {
                what: "skewed cache sets",
                expected: ">= 4".into(),
                got: geom.num_sets() as u64,
            });
        }
        let bank_sets = geom.num_sets() / 2;
        Ok(SkewedCache {
            geom,
            banks: [
                vec![Line::empty(); bank_sets],
                vec![Line::empty(); bank_sets],
            ],
            bank_sets,
            bank_bits: unicache_core::log2(bank_sets as u64),
            stats: CacheStats::new(geom.num_sets()),
            name: "skewed_2way".to_string(),
        })
    }

    /// Bank-0 index: conventional low bits.
    #[inline]
    pub fn f0(&self, block: BlockAddr) -> usize {
        (block & (self.bank_sets as u64 - 1)) as usize
    }

    /// Bank-1 index: low bits XOR the next `bank_bits` (Seznec-style skew).
    #[inline]
    pub fn f1(&self, block: BlockAddr) -> usize {
        let low = block & (self.bank_sets as u64 - 1);
        let tag_slice = (block >> self.bank_bits) & (self.bank_sets as u64 - 1);
        (low ^ tag_slice) as usize
    }

    /// Global stats-set id for a bank line (bank 0 first).
    #[inline]
    fn stat_set(&self, bank: usize, idx: usize) -> usize {
        bank * self.bank_sets + idx
    }

    /// True if the block is resident in either bank.
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        let l0 = &self.banks[0][self.f0(block)];
        let l1 = &self.banks[1][self.f1(block)];
        (l0.valid && l0.block == block) || (l1.valid && l1.block == block)
    }
}

impl CacheModel for SkewedCache {
    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn access(&mut self, rec: MemRecord) -> AccessResult {
        self.access_block(self.geom.block_addr(rec.addr), rec.kind.is_write())
    }

    fn access_block(&mut self, block: u64, is_write: bool) -> AccessResult {
        if is_write {
            self.stats.record_write();
        }
        unicache_obs::count(unicache_obs::Event::SkewedProbe);
        let (i0, i1) = (self.f0(block), self.f1(block));

        // Parallel probe of both banks.
        for (bank, idx) in [(0usize, i0), (1usize, i1)] {
            let line = &mut self.banks[bank][idx];
            if line.valid && line.block == block {
                line.recent = true;
                if is_write {
                    line.dirty = true;
                }
                // Clear the other candidate's recency so NRU stays fresh.
                let other = 1 - bank;
                let other_idx = if other == 0 { i0 } else { i1 };
                self.banks[other][other_idx].recent = false;
                let set = self.stat_set(bank, idx);
                self.stats.record(set, HitWhere::Primary);
                return AccessResult {
                    where_hit: HitWhere::Primary,
                    set,
                    evicted: None,
                };
            }
        }

        // Miss: NRU choice between the two candidates (invalid first).
        let pick = if !self.banks[0][i0].valid {
            0
        } else if !self.banks[1][i1].valid {
            1
        } else if !self.banks[0][i0].recent {
            0
        } else if !self.banks[1][i1].recent {
            1
        } else {
            // Both recent: deterministic tie-break on a block bit.
            (block & 1) as usize
        };
        let idx = if pick == 0 { i0 } else { i1 };
        let victim = self.banks[pick][idx];
        let set = self.stat_set(pick, idx);
        if victim.valid {
            self.stats.record_eviction(set);
        }
        self.banks[pick][idx] = Line {
            block,
            valid: true,
            dirty: is_write,
            recent: true,
        };
        self.stats.record(set, HitWhere::MissDirect);
        AccessResult {
            where_hit: HitWhere::MissDirect,
            set,
            evicted: if victim.valid {
                Some(victim.block)
            } else {
                None
            },
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn flush(&mut self) {
        for bank in &mut self.banks {
            for l in bank.iter_mut() {
                *l = Line::empty();
            }
        }
        self.stats.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Fusable only through the default (monomorphized) chunk loop: each
/// access probes two banks under two different hashes and the replacement
/// choice depends on both probes, so vectorizing one index buys nothing.
/// Fusing still removes the per-record virtual dispatch.
impl unicache_core::FusedLane for SkewedCache {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn geom(sets: usize) -> CacheGeometry {
        CacheGeometry::from_sets(sets, 32, 1).unwrap()
    }

    fn read_block(b: u64) -> MemRecord {
        MemRecord::read(b * 32)
    }

    #[test]
    fn validation() {
        assert!(SkewedCache::new(geom(64)).is_ok());
        assert!(SkewedCache::new(CacheGeometry::from_sets(64, 32, 2).unwrap()).is_err());
        assert!(SkewedCache::new(geom(2)).is_err());
    }

    #[test]
    fn skew_separates_bank0_conflicts() {
        let c = SkewedCache::new(geom(64)).unwrap(); // banks of 32
                                                     // Blocks 0 and 32 collide in bank 0 (f0 == 0) but have different
                                                     // tag slices, so f1 differs.
        assert_eq!(c.f0(0), c.f0(32));
        assert_ne!(c.f1(0), c.f1(32));
    }

    #[test]
    fn conflict_pair_coexists() {
        let mut c = SkewedCache::new(geom(64)).unwrap();
        c.access(read_block(0));
        c.access(read_block(32)); // bank-0 conflict; goes to bank 1
        assert!(c.contains_block(0));
        assert!(c.contains_block(32));
        let misses = c.stats().misses();
        for _ in 0..10 {
            assert!(c.access(read_block(0)).is_hit());
            assert!(c.access(read_block(32)).is_hit());
        }
        assert_eq!(c.stats().misses(), misses);
        // All hits are single-cycle (Primary) — the skewed cache's selling
        // point over the column-associative cache.
        assert_eq!(c.stats().secondary_hits, 0);
    }

    #[test]
    fn beats_direct_mapped_on_stride_conflicts() {
        use unicache_sim::CacheBuilder;
        let g = geom(64);
        let mut skewed = SkewedCache::new(g).unwrap();
        let mut dm = CacheBuilder::new(g).build().unwrap();
        // Stride pattern: blocks 0, 64, 128, 192 cycle (all f0-colliding
        // pairs after the bank fold).
        let blocks = [0u64, 32, 64, 96];
        for _ in 0..200 {
            for &b in &blocks {
                skewed.access(read_block(b));
                dm.access(read_block(b));
            }
        }
        assert!(
            skewed.stats().miss_rate() < dm.stats().miss_rate(),
            "skewed {} vs dm {}",
            skewed.stats().miss_rate(),
            dm.stats().miss_rate()
        );
    }

    #[test]
    fn conservation_and_determinism() {
        let mut c = SkewedCache::new(geom(32)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let refs: Vec<MemRecord> = (0..5000)
            .map(|_| read_block(rng.gen_range(0u64..128)))
            .collect();
        c.run(&refs);
        let first = c.stats().clone();
        assert_eq!(first.accesses(), 5000);
        let per_set: u64 = first.per_set().iter().map(|s| s.accesses).sum();
        assert_eq!(per_set, 5000);
        c.flush();
        c.run(&refs);
        assert_eq!(&first, c.stats());
    }

    #[test]
    fn single_residency() {
        let mut c = SkewedCache::new(geom(16)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..3000 {
            c.access(read_block(rng.gen_range(0u64..64)));
        }
        for b in 0..64u64 {
            let copies = c
                .banks
                .iter()
                .flatten()
                .filter(|l| l.valid && l.block == b)
                .count();
            assert!(copies <= 1, "block {b}: {copies} copies");
        }
    }
}
