//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: `BytesMut` as an appendable little-endian writer, `Bytes` as a
//! frozen read-only buffer (deref to `[u8]`), and the advancing [`Buf`]
//! reader impl on `&[u8]`. Backed by plain `Vec<u8>` — no refcounted
//! slices; the trace codec only ever builds and consumes whole buffers.

use std::ops::Deref;

/// Immutable byte buffer (stand-in for `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Appending writer methods (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Advancing reader methods (subset of `bytes::Buf`). Implemented on
/// `&[u8]` so `let mut buf: &[u8] = ...; buf.get_u64_le()` consumes the
/// front of the slice, exactly like upstream. Panics when the buffer is
/// too short, matching upstream's contract (callers bounds-check first).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf: advance past end");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u16_le(0xBEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_u8(0x7F);
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 4 + 2 + 8 + 1);

        let mut r: &[u8] = &frozen;
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_u8(), 0x7F);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_slices_and_to_vec() {
        let b: Bytes = BytesMut::with_capacity(0).freeze();
        assert!(b.is_empty());
        let mut w = BytesMut::with_capacity(4);
        w.put_u32_le(0xA1B2_C3D4);
        let b = w.freeze();
        assert_eq!(b.to_vec(), vec![0xD4, 0xC3, 0xB2, 0xA1]);
        assert_eq!(&b[..2], &[0xD4, 0xC3]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u64_le();
    }
}
