//! Offline stand-in for the subset of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect::<C>()`.
//!
//! Implemented with `std::thread::scope` — the input slice is split into
//! one contiguous chunk per available core, each chunk is mapped on its own
//! OS thread, and the per-chunk results are concatenated in order, so the
//! observable behaviour (ordering included) matches rayon's indexed
//! parallel iterators for the patterns the experiments use. This is not a
//! work-stealing pool; for the coarse per-workload tasks the experiment
//! runners fan out, a chunk-per-core split is within noise of rayon.

use std::num::NonZeroUsize;

/// Everything the workspace imports from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads to fan out to.
fn parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// `.par_iter()` on slice-like containers (subset of rayon's trait of the
/// same name).
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: Sync + 'data;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps every element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of elements (rayon: `IndexedParallelIterator::len`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`], consumed by `collect`.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, F, R> ParMap<'data, T, F>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    /// Runs the map on a chunk-per-core thread fan-out and collects the
    /// results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_mapped(self.items, &self.f).into_iter().collect()
    }
}

/// Maps `items` through `f` on scoped threads, returning results in order.
fn run_mapped<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = parallelism().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let mut out_rest: &mut [Option<R>] = &mut out;
    std::thread::scope(|scope| {
        for piece in items.chunks(chunk) {
            let (head, tail) = out_rest.split_at_mut(piece.len());
            out_rest = tail;
            scope.spawn(move || {
                for (slot, item) in head.iter_mut().zip(piece) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let xs: Vec<usize> = (0..256).collect();
        let _out: Vec<usize> = xs
            .par_iter()
            .map(|&x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                x
            })
            .collect();
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(seen.lock().unwrap().len() > 1, "no parallelism observed");
        }
    }

    #[test]
    fn collects_into_other_containers() {
        let xs = [1u32, 2, 3];
        let set: std::collections::HashSet<u32> = xs.par_iter().map(|&x| x * 10).collect();
        assert_eq!(set, [10, 20, 30].into_iter().collect());
    }
}
