//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `criterion_group!`/`criterion_main!`, `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{throughput, sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId`,
//! `Throughput::Elements` and `Bencher::iter`.
//!
//! It is a real (small) measuring harness, not a no-op: each benchmark is
//! warmed up, then timed over enough iterations to fill a fixed budget,
//! and the mean time per iteration (plus derived throughput) is printed.
//! `-- --test` runs every benchmark body exactly once and skips
//! measurement — that is what CI's smoke step uses. Positional CLI args
//! act as substring filters on benchmark ids, like upstream.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work units, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (function name and/or parameter string).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter (grouped under the group name).
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Conversion of the id forms `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// The id string to report under.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    /// Measured mean nanoseconds per iteration (test mode: 0).
    mean_ns: f64,
    iters: u64,
}

const WARMUP: Duration = Duration::from_millis(30);
const BUDGET: Duration = Duration::from_millis(150);

impl Bencher {
    /// Times `f`, storing the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            self.mean_ns = 0.0;
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size the measured run to the budget (at least 10 iterations).
        let target = ((BUDGET.as_secs_f64() / est.max(1e-9)) as u64).clamp(10, 50_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        let total = start.elapsed();
        self.iters = target;
        self.mean_ns = total.as_nanos() as f64 / target as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:9.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:9.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:9.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:9.2} s ", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:8.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:8.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:8.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:8.3} {unit}/s")
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.test_mode {
        println!("test {id} ... ok (ran once, --test)");
        return;
    }
    let mut line = format!(
        "{id:<48} time: {}  ({} iters)",
        human_time(b.mean_ns),
        b.iters
    );
    if let Some(tp) = throughput {
        let (n, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if b.mean_ns > 0.0 {
            let per_sec = n as f64 / (b.mean_ns * 1e-9);
            line.push_str(&format!("  thrpt: {}", human_rate(per_sec, unit)));
        }
    }
    println!("{line}");
}

/// Shared runner state: CLI mode and id filters.
#[derive(Debug, Clone)]
struct RunnerConfig {
    test_mode: bool,
    filters: Vec<String>,
}

impl RunnerConfig {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        RunnerConfig { test_mode, filters }
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// The benchmark manager handed to each target function.
pub struct Criterion {
    config: RunnerConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: RunnerConfig::from_args(),
        }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        run_one(&self.config, &id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: &self.config,
            name: name.into(),
            throughput: None,
        }
    }
}

fn run_one<F>(config: &RunnerConfig, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !config.selected(id) {
        return;
    }
    let mut b = Bencher {
        test_mode: config.test_mode,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    report(id, &b, throughput);
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    config: &'c RunnerConfig,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(self.config, &id, self.throughput, f);
        self
    }

    /// Runs one benchmark that borrows a setup input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(self.config, &id, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Declares a group function running each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> RunnerConfig {
        RunnerConfig {
            test_mode: true,
            filters: Vec::new(),
        }
    }

    #[test]
    fn test_mode_runs_body_once() {
        let cfg = test_config();
        let mut count = 0;
        run_one(&cfg, "x", None, |b| {
            b.iter(|| count += 1);
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn measurement_produces_positive_mean() {
        let cfg = RunnerConfig {
            test_mode: false,
            filters: Vec::new(),
        };
        let mut observed = 0.0;
        run_one(&cfg, "spin", None, |b| {
            b.iter(|| black_box(17u64.wrapping_mul(31)));
            observed = b.mean_ns;
            assert!(b.iters >= 10);
        });
        assert!(observed > 0.0);
    }

    #[test]
    fn filters_select_by_substring() {
        let cfg = RunnerConfig {
            test_mode: true,
            filters: vec!["match".into()],
        };
        let mut ran = false;
        run_one(&cfg, "no", None, |_| ran = true);
        assert!(!ran);
        run_one(&cfg, "does_match_here", None, |_| ran = true);
        assert!(ran);
    }

    #[test]
    fn ids_and_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("lru").into_id(), "lru");
        assert!(human_time(12.5).contains("ns"));
        assert!(human_time(12_500.0).contains("µs"));
        assert!(human_rate(2.5e6, "elem").contains("Melem/s"));
    }
}
