//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors minimal, deterministic implementations of the
//! exact APIs the code depends on: [`rngs::StdRng`], [`Rng`] (with
//! `gen`, `gen_range`, `gen_bool`) and [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — high-quality,
//! fast, and fully deterministic for a given seed, which is all the
//! synthetic workload generators and randomized tests require. Streams
//! differ from upstream `rand`'s ChaCha-based `StdRng`; nothing in the
//! workspace depends on the exact upstream streams.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`), the
/// shim's equivalent of sampling from `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit source every other method is derived from.
pub trait RngCore {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Ranges usable with [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform value over the whole domain of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; different stream, same contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace does not rely on `SmallRng`'s properties.
    pub type SmallRng = StdRng;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        let mut chunks = out.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = rng.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        out
    }
}

/// Uniform integer in `[0, bound)` by Lemire-style widening multiply with a
/// rejection pass to stay unbiased.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types `gen_range` can sample (mirrors `rand`'s `SampleUniform`). A
/// single generic `SampleRange` impl per range type keeps integer-literal
/// inference working exactly like upstream: `rng.gen_range(1..=16) * 4u64`
/// resolves the literals to `u64` from context instead of falling back to
/// `i32`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole u64-sized domain: any draw is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Floats: treated as half-open, matching practical use.
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = r.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 gave {hits}");
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn array_and_float_standard_draws() {
        let mut r = StdRng::seed_from_u64(5);
        let key: [u8; 16] = r.gen();
        let key2: [u8; 16] = r.gen();
        assert_ne!(key, key2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
