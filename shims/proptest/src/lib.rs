//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements the same surface syntax — `proptest! { #[test] fn f(x in
//! strategy) { ... } }`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Just`, range strategies, `proptest::collection::{vec, hash_set}`,
//! `proptest::num::*::ANY`, `proptest::bool::ANY`, and
//! `ProptestConfig::with_cases` — over a small deterministic runner.
//!
//! Differences from upstream, none of which the workspace's tests rely on:
//! no shrinking (a failing case reports its inputs via the assertion
//! message instead of a minimized counterexample), no persisted failure
//! seeds (every run replays the same deterministic case sequence), and a
//! default of 64 cases per property rather than 256.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies while generating one test case.
pub type TestRng = StdRng;

/// Test-case generators.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A generator of values of type `Value` (shim of upstream's trait of
    /// the same name; `generate` plays the role of `new_tree` + current —
    /// there is no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    /// Builds a [`OneOf`]; used by the `prop_oneof!` expansion.
    pub fn one_of<T>(choices: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }

    /// Erases a strategy's concrete type; used by the `prop_oneof!`
    /// expansion so element types unify without relying on unsized
    /// coercion through inference variables.
    pub fn box_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.choices.len());
            self.choices[i].generate(rng)
        }
    }

    /// Whole-domain generator behind `proptest::num::*::ANY` and
    /// `proptest::bool::ANY`.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// `Vec` of `size` elements drawn from `elem` (half-open size range,
    /// matching every call site in this workspace).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { elem, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `HashSet` of `size` *distinct* elements drawn from `elem`. The
    /// element domain must be able to supply the requested number of
    /// distinct values; generation retries duplicates a bounded number of
    /// times, like upstream's local-rejection sampling.
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(
            size.start < size.end,
            "collection::hash_set: empty size range"
        );
        HashSetStrategy { elem, size }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target {
                out.insert(self.elem.generate(rng));
                attempts += 1;
                assert!(
                    attempts < target * 100 + 1000,
                    "hash_set strategy could not reach {target} distinct elements"
                );
            }
            out
        }
    }
}

/// Numeric `ANY` markers (`proptest::num::u64::ANY`, ...).
pub mod num {
    macro_rules! any_mod {
        ($($m:ident: $t:ty),*) => {$(
            /// Whole-domain strategy for the primitive of the same name.
            pub mod $m {
                use crate::strategy::Any;
                use std::marker::PhantomData;
                /// Uniform over the full domain.
                pub const ANY: Any<$t> = Any(PhantomData);
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
             i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

/// `proptest::bool::ANY`.
pub mod bool {
    use crate::strategy::Any;
    use std::marker::PhantomData;
    /// Fair coin.
    pub const ANY: Any<::core::primitive::bool> = Any(PhantomData);
}

/// Runner types (`proptest::test_runner`).
pub mod test_runner {
    use super::{SeedableRng, StdRng};

    /// Per-property configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case (what `prop_assert!` returns early with).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives `body` over `config.cases` deterministic cases, panicking on
    /// the first failure (no shrinking).
    pub fn run<F>(config: ProptestConfig, mut body: F)
    where
        F: FnMut(&mut super::TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            // Deterministic, well-separated seeds so every run replays the
            // identical case sequence.
            let mut rng = StdRng::seed_from_u64(
                0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1) ^ 0x5EED,
            );
            if let Err(e) = body(&mut rng) {
                panic!("proptest: case {case}/{} failed: {e}", config.cases);
            }
        }
    }
}

/// Everything the workspace imports via `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn name(pat in
/// strategy, ...) { body }` into a zero-arg test running the shared runner.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, |__proptest_rng| {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __proptest_result
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts within a [`proptest!`] body, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    ::std::format!(
                        "assertion failed: {}: {}",
                        ::std::stringify!($cond),
                        ::std::format!($($fmt)+),
                    ),
                ),
            );
        }
    };
}

/// Equality assertion within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __l,
                    __r,
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    ::std::format!($($fmt)+),
                    __l,
                    __r,
                )),
            );
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(::std::vec![
            $($crate::strategy::box_strategy($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_collections_respect_bounds() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = (0u64..10).generate(&mut rng);
            assert!(v < 10);
            let xs = crate::collection::vec(0u32..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
            let set = crate::collection::hash_set(0u32..40, 1..12).generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 12);
            let (a, b, c) = (crate::num::u64::ANY, 0u8..3, crate::num::u8::ANY).generate(&mut rng);
            let _ = (a, c);
            assert!(b < 3);
            let fr = (1u32..).generate(&mut rng);
            assert!(fr >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself: metas, multiple args, trailing comma,
        /// `mut` patterns, prop_assert forms, prop_oneof.
        #[test]
        fn macro_surface_works(
            mut xs in crate::collection::vec(0u64..100, 1..20),
            flag in crate::bool::ANY,
            pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8),],
        ) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(matches!(pick, 1..=3), "pick was {}", pick);
            prop_assert_eq!(flag, flag);
            prop_assert_eq!(xs.len(), xs.len(), "length {}", xs.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case")]
    fn failing_property_panics_with_case_number() {
        crate::test_runner::run(ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("forced"))
        });
    }
}
