//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` backing the
//! offline `serde` shim. The workspace only ever *derives* the traits —
//! nothing serializes at runtime — so an empty expansion satisfies every
//! use site while keeping the attribute syntax identical to upstream.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` shim's `Serialize` is a blanket-less
/// marker with no required items.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
