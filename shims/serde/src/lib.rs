//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on plain data
//! types — no serializer is ever instantiated — so this shim provides the
//! trait names (empty marker traits, matching upstream's namespacing) and
//! re-exports the no-op derive macros from `serde_derive`. `#[serde(...)]`
//! container attributes are accepted and ignored by the derives.

/// Marker stand-in for `serde::Serialize`; never used as a bound here.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; never used as a bound here.
pub trait Deserialize<'de> {}

// Same-name re-export into the macro namespace, exactly as upstream serde
// does with its `derive` feature: `use serde::{Serialize, Deserialize}`
// picks up both the trait and the derive macro.
pub use serde_derive::{Deserialize, Serialize};
