//! Reproduces the paper's indexing-scheme story end to end: Figure 4
//! (miss-rate reductions) plus the Figure 9/10 uniformity view, for the
//! whole MiBench-like suite.
//!
//! ```sh
//! cargo run --release --example compare_indexing
//! ```

use unicache::experiments::figures::{fig1, indexing};
use unicache::prelude::*;

fn main() {
    let store = SimStore::new(Scale::Small);

    // Figure 1: why any of this matters — FFT hammers a few sets.
    let report = fig1::report(&store, Workload::Fft);
    print!("{}", report.render());
    println!();

    // Figure 4: who actually wins, per workload.
    let fig4 = indexing::fig4(&store);
    println!("{}", fig4.render());

    // The paper's conclusion, computed live: does any scheme win
    // everywhere?
    let mut universal: Vec<&String> = Vec::new();
    for (c, col) in fig4.cols.iter().enumerate() {
        let always_wins = fig4
            .values
            .iter()
            .take(fig4.rows.len() - 1) // skip Average
            .all(|row| row[c] >= 0.0);
        if always_wins {
            universal.push(col);
        }
    }
    if universal.is_empty() {
        println!("no indexing scheme wins universally — each application needs its own\n");
    } else {
        println!("schemes that never lost on this run: {universal:?}\n");
    }

    // Figures 9/10: uniformity of misses.
    println!("{}", indexing::fig9(&store).render());
    println!("{}", indexing::fig10(&store).render());
}
