//! Bring your own workload: instrument an arbitrary algorithm with the
//! tracing memory, then evaluate which cache technique suits it —
//! exactly what a user would do to extend the paper's study.
//!
//! The example instruments a binary-heap priority queue processing a
//! stream of events (a pattern none of the built-in 21 workloads covers).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use std::sync::Arc;
use unicache::prelude::*;
use unicache::trace::Region;

/// A traced binary min-heap.
struct TracedHeap {
    data: TracedVec<u64>,
    len: usize,
}

impl TracedHeap {
    fn new(tracer: &Tracer, cap: usize) -> Self {
        TracedHeap {
            data: TracedVec::zeroed_in(tracer, Region::Heap, cap),
            len: 0,
        }
    }

    fn push(&mut self, v: u64) {
        let mut i = self.len;
        self.data.set(i, v);
        self.len += 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data.get(parent) <= self.data.get(i) {
                break;
            }
            self.data.swap(parent, i);
            i = parent;
        }
    }

    fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let top = self.data.get(0);
        self.len -= 1;
        if self.len > 0 {
            let last = self.data.get(self.len);
            self.data.set(0, last);
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut m = i;
                if l < self.len && self.data.get(l) < self.data.get(m) {
                    m = l;
                }
                if r < self.len && self.data.get(r) < self.data.get(m) {
                    m = r;
                }
                if m == i {
                    break;
                }
                self.data.swap(m, i);
                i = m;
            }
        }
        Some(top)
    }
}

fn main() {
    // 1. Run the instrumented algorithm to capture its trace.
    let tracer = Tracer::new();
    let mut heap = TracedHeap::new(&tracer, 1 << 16);
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut popped = 0u64;
    for round in 0..40_000u64 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        heap.push(seed >> 16);
        if round % 3 == 2 {
            popped = popped.wrapping_add(heap.pop().unwrap());
        }
    }
    let trace = tracer.finish();
    println!("captured {} references from the heap workload", trace.len());

    // 2. Evaluate candidate techniques on that trace.
    let geom = CacheGeometry::paper_l1();
    let sets = geom.num_sets();
    let unique = trace.unique_blocks(geom.line_bytes());
    let mut candidates: Vec<Box<dyn CacheModel>> = vec![
        Box::new(
            CacheBuilder::new(geom)
                .name("conventional")
                .build()
                .unwrap(),
        ),
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(XorIndex::new(sets).unwrap()))
                .name("xor")
                .build()
                .unwrap(),
        ),
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(GivargisIndex::train(&unique, geom, 28).unwrap()))
                .name("givargis")
                .build()
                .unwrap(),
        ),
        Box::new(ColumnAssociativeCache::new(geom).unwrap()),
        Box::new(AdaptiveGroupCache::new(geom).unwrap()),
    ];

    println!(
        "\n{:<28} {:>10} {:>12} {:>10}",
        "technique", "miss %", "kurtosis", "gini"
    );
    let mut best: Option<(String, f64)> = None;
    for model in &mut candidates {
        model.run(trace.records());
        let s = model.stats();
        let misses = s.misses_per_set();
        let m = Moments::from_counts(&misses);
        let g = unicache::stats::gini(&s.accesses_per_set());
        println!(
            "{:<28} {:>9.3}% {:>12.2} {:>10.3}",
            model.name(),
            100.0 * s.miss_rate(),
            m.kurtosis,
            g
        );
        let rate = s.miss_rate();
        if best.as_ref().map(|(_, r)| rate < *r).unwrap_or(true) {
            best = Some((model.name().to_string(), rate));
        }
    }
    let (name, rate) = best.unwrap();
    println!(
        "\nbest technique for this workload: {name} ({:.3}% misses)",
        100.0 * rate
    );
    println!("(checksum to keep the kernel honest: {popped})");
}
