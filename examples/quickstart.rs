//! Quickstart: measure how each technique changes the miss rate of one
//! workload on the paper's cache configuration.
//!
//! ```sh
//! cargo run --release --example quickstart [workload]
//! ```

use std::sync::Arc;
use unicache::prelude::*;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Fft);
    println!(
        "workload: {}  (32 KB direct-mapped L1, 32 B lines)",
        workload.name()
    );

    let trace = workload.generate(Scale::Small);
    println!(
        "trace: {} references, {} unique blocks\n",
        trace.len(),
        trace.unique_blocks(32).len()
    );

    let geom = CacheGeometry::paper_l1();
    let sets = geom.num_sets();

    // Baseline.
    let mut baseline = CacheBuilder::new(geom)
        .name("conventional")
        .build()
        .unwrap();
    baseline.run(trace.records());
    let base_rate = baseline.stats().miss_rate();
    println!(
        "{:<24} miss rate {:>7.3}%",
        "conventional",
        100.0 * base_rate
    );

    // Every technique the paper evaluates, one call each.
    let unique = trace.unique_blocks(geom.line_bytes());
    let mut models: Vec<Box<dyn CacheModel>> = vec![
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(XorIndex::new(sets).unwrap()))
                .name("xor")
                .build()
                .unwrap(),
        ),
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(OddMultiplierIndex::paper_default(sets).unwrap()))
                .name("odd_multiplier")
                .build()
                .unwrap(),
        ),
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(PrimeModuloIndex::new(sets).unwrap()))
                .name("prime_modulo")
                .build()
                .unwrap(),
        ),
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(GivargisIndex::train(&unique, geom, 28).unwrap()))
                .name("givargis")
                .build()
                .unwrap(),
        ),
        Box::new(ColumnAssociativeCache::new(geom).unwrap()),
        Box::new(AdaptiveGroupCache::new(geom).unwrap()),
        Box::new(BCache::new(geom).unwrap()),
        Box::new(PartnerIndexCache::new(geom).unwrap()),
    ];

    for model in &mut models {
        model.run(trace.records());
        let rate = model.stats().miss_rate();
        let delta = if base_rate > 0.0 {
            100.0 * (base_rate - rate) / base_rate
        } else {
            0.0
        };
        println!(
            "{:<24} miss rate {:>7.3}%   ({delta:+.1}% vs conventional)",
            model.name(),
            100.0 * rate,
        );
    }
}
