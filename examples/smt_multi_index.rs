//! The paper's SMT experiments (Figures 13 & 14): two threads sharing one
//! L1, first with per-thread index functions, then with the adaptive
//! partitioned scheme.
//!
//! ```sh
//! cargo run --release --example smt_multi_index [workload_a] [workload_b]
//! ```

use std::sync::Arc;
use unicache::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let wa = args
        .next()
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Fft);
    let wb = args
        .next()
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Susan);
    println!("SMT mix: {} + {}", wa.name(), wb.name());

    let ta = wa.generate(Scale::Small);
    let tb = wb.generate(Scale::Small);
    let merged = interleave(&[ta, tb], InterleavePolicy::RoundRobin);
    println!("merged trace: {} references\n", merged.len());

    let geom = CacheGeometry::paper_l1();
    let sets = geom.num_sets();
    let lat = LatencyModel::default();

    // --- Fig. 13: per-thread indexing in a shared cache -------------------
    let same: Vec<Arc<dyn IndexFunction>> = vec![
        Arc::new(ModuloIndex::new(sets).unwrap()),
        Arc::new(ModuloIndex::new(sets).unwrap()),
    ];
    let mut shared_conventional = PerThreadIndexCache::new(geom, same).unwrap();
    shared_conventional.run(merged.records());
    let base_rate = shared_conventional.stats().miss_rate();

    let different: Vec<Arc<dyn IndexFunction>> = vec![
        Arc::new(OddMultiplierIndex::new(sets, 9).unwrap()),
        Arc::new(OddMultiplierIndex::new(sets, 21).unwrap()),
    ];
    let mut shared_multi = PerThreadIndexCache::new(geom, different).unwrap();
    shared_multi.run(merged.records());
    let multi_rate = shared_multi.stats().miss_rate();

    println!(
        "shared cache, both threads conventional: {:.3}% misses",
        100.0 * base_rate
    );
    println!(
        "shared cache, per-thread odd multipliers: {:.3}% misses",
        100.0 * multi_rate
    );
    println!(
        "  -> {:.1}% reduction (paper Fig. 13)\n",
        100.0 * (base_rate - multi_rate) / base_rate.max(f64::MIN_POSITIVE)
    );

    // --- Fig. 14: static vs adaptive partitioning -------------------------
    let mut static_part = PartitionedCache::new(geom, 2).unwrap();
    static_part.run(merged.records());
    let static_amat = amat_conventional(static_part.stats(), &lat);

    let mut adaptive_part = AdaptivePartitionedCache::new(geom, 2).unwrap();
    adaptive_part.run(merged.records());
    let adaptive_amat = amat_adaptive(adaptive_part.stats(), &lat);

    println!(
        "static partitions:   AMAT {static_amat:.3} cycles ({:.3}% misses)",
        100.0 * static_part.stats().miss_rate()
    );
    println!(
        "adaptive partitions: AMAT {adaptive_amat:.3} cycles ({:.3}% misses, {} spills)",
        100.0 * adaptive_part.stats().miss_rate(),
        adaptive_part.stats().relocations
    );
    println!(
        "  -> {:.1}% AMAT improvement (paper Fig. 14)",
        100.0 * (static_amat - adaptive_amat) / static_amat
    );
}
