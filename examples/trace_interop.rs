//! Trace interop: capture a workload trace, round-trip it through every
//! supported serialization (compact binary, CSV, Dinero III), and verify
//! the simulation results are bit-identical — the workflow for exchanging
//! traces with external cache simulators (dineroIV etc.).
//!
//! ```sh
//! cargo run --release --example trace_interop [workload]
//! ```

use unicache::prelude::*;
use unicache::trace::io;

fn simulate(trace: &Trace) -> (u64, u64) {
    let mut cache = CacheBuilder::new(CacheGeometry::paper_l1())
        .build()
        .unwrap();
    cache.run(trace.records());
    (cache.stats().hits(), cache.stats().misses())
}

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Sha);
    let trace = workload.generate(Scale::Tiny);
    println!(
        "workload {}: {} references ({} writes)",
        workload.name(),
        trace.len(),
        trace.write_count()
    );
    let reference = simulate(&trace);
    println!(
        "reference simulation: {} hits / {} misses\n",
        reference.0, reference.1
    );

    // Binary.
    let bin = io::encode(&trace);
    let from_bin = io::decode(&bin).expect("binary decode");
    println!(
        "binary:  {:>9} bytes ({:.1} B/record)  results match: {}",
        bin.len(),
        bin.len() as f64 / trace.len() as f64,
        simulate(&from_bin) == reference
    );

    // CSV.
    let csv = io::to_csv(&trace);
    let from_csv = io::from_csv(&csv).expect("csv parse");
    println!(
        "csv:     {:>9} bytes ({:.1} B/record)  results match: {}",
        csv.len(),
        csv.len() as f64 / trace.len() as f64,
        simulate(&from_csv) == reference
    );

    // Dinero III (for dineroIV and friends; drops thread ids).
    let din = io::to_dinero(&trace);
    let from_din = io::from_dinero(&din).expect("dinero parse");
    println!(
        "dinero:  {:>9} bytes ({:.1} B/record)  results match: {}",
        din.len(),
        din.len() as f64 / trace.len() as f64,
        simulate(&from_din) == reference
    );

    println!(
        "\nwrite e.g. `io::encode(&trace)` to a file to hand this workload\n\
         to an external simulator, or `io::from_dinero` to replay foreign\n\
         traces through every technique in this workspace."
    );
}
