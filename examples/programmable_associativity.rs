//! Walks through the programmable-associativity schemes on a single hot
//! conflict, showing *where* each one finds the data (primary, secondary,
//! miss) and what that costs in cycles — the mechanics behind the paper's
//! Figures 6 and 7.
//!
//! ```sh
//! cargo run --release --example programmable_associativity
//! ```

use unicache::prelude::*;

fn describe(model: &mut dyn CacheModel, refs: &[MemRecord], lat: &LatencyModel) {
    println!("--- {} ---", model.name());
    for (i, &r) in refs.iter().enumerate() {
        let out = model.access(r);
        println!(
            "  ref {:>2}: block {:>4} -> set {:>4} {:?}",
            i,
            r.addr / 32,
            out.set,
            out.where_hit
        );
    }
    let s = model.stats();
    println!(
        "  totals: {} accesses, {} primary hits, {} secondary hits, {} misses",
        s.accesses(),
        s.primary_hits,
        s.secondary_hits,
        s.misses()
    );
    let amat = match model.name() {
        n if n.starts_with("adaptive") => amat_adaptive(s, lat),
        n if n.starts_with("column") => amat_column_associative(s, lat),
        _ => amat_conventional(s, lat),
    };
    println!("  AMAT: {amat:.3} cycles\n");
}

fn main() {
    let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
    let lat = LatencyModel::default();

    // Two blocks that collide in every conventional direct-mapped cache
    // (same low index bits), accessed alternately — the worst case the
    // Section III schemes were designed for.
    let a = 0u64;
    let b = 64 * 32; // one full cache of lines away
    let mut refs = Vec::new();
    for _ in 0..6 {
        refs.push(MemRecord::read(a));
        refs.push(MemRecord::read(b));
    }

    let mut conventional = CacheBuilder::new(geom)
        .name("conventional")
        .build()
        .unwrap();
    describe(&mut conventional, &refs, &lat);

    let mut column = ColumnAssociativeCache::new(geom).unwrap();
    describe(&mut column, &refs, &lat);

    let mut adaptive = AdaptiveGroupCache::new(geom).unwrap();
    describe(&mut adaptive, &refs, &lat);

    let mut bcache = BCache::new(geom).unwrap();
    describe(&mut bcache, &refs, &lat);

    let mut partner = PartnerIndexCache::with_config(
        geom,
        unicache::assoc::PartnerConfig {
            epoch: 6,
            max_pairs: 8,
        },
    )
    .unwrap();
    describe(&mut partner, &refs, &lat);

    println!(
        "takeaway: the conventional cache misses on every reference;\n\
         each programmable-associativity scheme converts the ping-pong into\n\
         hits at slightly different cycle costs — the paper's Fig. 6/7 story."
    );
}
