//! # unicache
//!
//! A side-by-side evaluation framework for techniques that improve **cache
//! access uniformity** — a from-scratch Rust reproduction of
//! *"Evaluation of Techniques to Improve Cache Access Uniformities"*
//! (Nwachukwu, Kavi, Fawibe, Yan — ICPP 2011).
//!
//! Low-associativity L1 caches suffer from non-uniform set utilization: a
//! few sets absorb most accesses (and conflict misses) while the majority
//! sit idle. The paper — and this crate — compares the two families of
//! published fixes head-to-head on one simulator and one workload suite:
//!
//! * **Indexing functions** ([`indexing`]): XOR, odd-multiplier
//!   displacement, prime-modulo, Givargis' trace-trained bit selection and
//!   the Givargis-XOR hybrid, plus Patel's optimal-index search;
//! * **Programmable associativity** ([`assoc`]): column-associative cache,
//!   adaptive group-associative cache (SHT + OUT directory), Zhang's
//!   B-cache, and the partner-index cache.
//!
//! ## Quick start
//!
//! ```
//! use unicache::prelude::*;
//! use std::sync::Arc;
//!
//! // A paper-configuration L1 (32 KB direct-mapped, 32 B lines)…
//! let geom = CacheGeometry::paper_l1();
//! // …with XOR indexing instead of the conventional modulo index.
//! let mut cache = CacheBuilder::new(geom)
//!     .index(Arc::new(XorIndex::new(geom.num_sets()).unwrap()))
//!     .build()
//!     .unwrap();
//!
//! // Drive it with the instrumented FFT workload (the paper's Figure 1).
//! let trace = Workload::Fft.generate(Scale::Tiny);
//! cache.run(trace.records());
//! println!("miss rate: {:.2}%", 100.0 * cache.stats().miss_rate());
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `unicache-core` | geometry, records, `IndexFunction`/`CacheModel` traits, per-set stats |
//! | [`indexing`] | `unicache-indexing` | Section II index functions |
//! | [`sim`] | `unicache-sim` | set-associative cache, victim cache, Belady bound |
//! | [`assoc`] | `unicache-assoc` | Section III programmable-associativity caches |
//! | [`timing`] | `unicache-timing` | AMAT (paper Eq. 8/9), 2-level hierarchy |
//! | [`smt`] | `unicache-smt` | SMT interleaving, per-thread indexing, partitioned caches |
//! | [`hierarchy`] | `unicache-hierarchy` | multi-core MESI hierarchy, victim buffers, coherence model checker |
//! | [`trace`] | `unicache-trace` | simulated address space, instrumented memory, trace I/O |
//! | [`workloads`] | `unicache-workloads` | 11 MiBench-like + 10 SPEC-like instrumented kernels |
//! | [`stats`] | `unicache-stats` | kurtosis/skewness, FHS/FMS/LAS, Gini/entropy |
//! | [`obs`] | `unicache-obs` | deterministic event counters, histograms, span tracing |
//! | [`experiments`] | `unicache-experiments` | one runner per paper figure (`xp` binary) |

pub use unicache_assoc as assoc;
pub use unicache_core as core;
pub use unicache_exec as exec;
pub use unicache_experiments as experiments;
pub use unicache_hierarchy as hierarchy;
pub use unicache_indexing as indexing;
pub use unicache_model as model;
pub use unicache_obs as obs;
pub use unicache_sim as sim;
pub use unicache_smt as smt;
pub use unicache_stats as stats;
pub use unicache_timing as timing;
pub use unicache_trace as trace;
pub use unicache_workloads as workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use unicache_assoc::{
        AdaptiveGroupCache, BCache, ColumnAssociativeCache, PartnerChainCache, PartnerIndexCache,
        SkewedCache,
    };
    pub use unicache_core::CoherentModel;
    pub use unicache_core::{run_batch_many, run_fused, BlockStream, FusedLane, FUSE_CHUNK};
    pub use unicache_core::{
        AccessKind, AccessResult, Addr, CacheGeometry, CacheModel, CacheStats, HitWhere,
        IndexFunction, MemRecord,
    };
    pub use unicache_experiments::{ExperimentTable, FuseGroup, SchemeId, SimStore, TraceStore};
    pub use unicache_hierarchy::{
        check_coherence_protocol, run_coherent_fused, CoherenceConfig, CoherenceMutation,
        CoherentChunk, CoherentHierarchy, CoherentL1, HierarchyBuilder, L2Mode, Mesi,
    };
    pub use unicache_indexing::{
        GivargisIndex, GivargisXorIndex, IndexScheme, ModuloIndex, OddMultiplierIndex, PatelSearch,
        PrimeModuloIndex, XorIndex,
    };
    pub use unicache_sim::{Cache, CacheBuilder, ReplacementPolicy, VictimBuffer, VictimCache};
    pub use unicache_smt::{
        interleave, AdaptivePartitionedCache, InterleavePolicy, PartitionedCache,
        PerThreadIndexCache,
    };
    pub use unicache_stats::{LifetimeLens, Moments, RecencyLens, SetClassification};
    pub use unicache_timing::{
        amat_adaptive, amat_column_associative, amat_conventional, Hierarchy, LatencyModel,
        LogicalClock,
    };
    pub use unicache_trace::{Trace, TracedMat, TracedVec, Tracer};
    pub use unicache_workloads::{Scale, Workload};
}
