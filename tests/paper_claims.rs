//! End-to-end checks of the paper's headline claims, through the public
//! facade, at test scale.

use unicache::experiments::figures::{assoc, extras, fig1, hybrid, indexing, smt};
use unicache::prelude::*;

fn store() -> SimStore {
    SimStore::new(Scale::Tiny)
}

#[test]
fn figure_runners_share_one_simulation_per_key() {
    // The SimStore contract the figure table depends on: across any
    // sequence of figure runs, each distinct (workload, scheme, geometry)
    // simulates exactly once. Figs. 4 and 9 read the same simulations
    // (miss reduction vs kurtosis of the same schemes), so the second
    // runner — and a repeat of the first — must be served entirely from
    // the cache.
    let store = store();
    indexing::fig4(&store);
    let sims_after_fig4 = store.sims_run();
    assert!(sims_after_fig4 > 0);
    indexing::fig9(&store);
    indexing::fig4(&store);
    assert_eq!(
        store.sims_run(),
        sims_after_fig4,
        "a later figure re-ran a simulation the store had already done"
    );
    assert!(store.hits() > 0);
}

#[test]
fn figure1_fft_hammers_few_sets() {
    let r = fig1::report(&store(), Workload::Fft);
    // The paper's motivating observation, shape-level: most sets cold, a
    // few hot.
    assert!(r.pct_below_half_avg > 50.0);
    assert!(r.pct_above_twice_avg > 0.0);
    assert!(r.moments.kurtosis > 0.0, "leptokurtic access distribution");
}

#[test]
fn figure4_no_universal_indexing_winner() {
    let t = indexing::fig4(&store());
    // "None of the techniques perform consistently well."
    let workload_rows = t.rows.len() - 1;
    for (c, col) in t.cols.iter().enumerate() {
        let wins = t
            .values
            .iter()
            .take(workload_rows)
            .filter(|r| r[c] > 1.0)
            .count();
        assert!(
            wins < workload_rows,
            "{col} won on every workload — contradicts the paper"
        );
    }
    // "Some specific applications benefit from a specific indexing
    // scheme": fft gains substantially somewhere.
    let fft_best = t
        .cols
        .iter()
        .map(|c| t.get("fft", c).unwrap())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(fft_best > 30.0, "fft best gain only {fft_best:.1}%");
}

#[test]
fn figure6_and_7_programmable_associativity_helps() {
    let s = store();
    let t6 = assoc::fig6(&s);
    for col in &t6.cols {
        let avg = t6.get("Average", col).unwrap();
        assert!(avg > 0.0, "{col} fig6 average {avg:.2}");
    }
    let t7 = assoc::fig7(&s);
    let col_assoc = t7.get("Average", "Column_associative").unwrap();
    assert!(col_assoc > 0.0, "column-assoc AMAT average {col_assoc:.2}");
}

#[test]
fn figure8_hybrids_are_application_dependent() {
    let t = hybrid::fig8(&store());
    let vals: Vec<f64> = t
        .values
        .iter()
        .take(t.rows.len() - 1)
        .flat_map(|r| r.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    assert!(vals.iter().any(|&v| v > 0.0), "no hybrid ever helped");
    assert!(vals.iter().any(|&v| v < 0.0), "no hybrid ever hurt");
}

#[test]
fn figure13_and_14_smt_improvements() {
    let s = store();
    let t13 = smt::fig13(&s);
    assert!(t13.get("Average", "PerThread_Odd_Multiplier").unwrap() > 0.0);
    let t14 = smt::fig14(&s);
    assert!(t14.get("Average", "Adaptive_Partitioned").unwrap() > 0.0);
}

#[test]
fn per_application_selection_beats_any_fixed_technique() {
    // The paper's research direction: selecting the best technique per
    // application dominates every single fixed choice.
    let t = extras::scheme_selection(&store());
    let winners = extras::winners(&t);
    let oracle_avg: f64 = winners.iter().map(|(_, _, v)| *v).sum::<f64>() / winners.len() as f64;
    for (c, col) in t.cols.iter().enumerate() {
        let fixed_avg: f64 = t.values.iter().map(|r| r[c]).sum::<f64>() / t.values.len() as f64;
        assert!(
            oracle_avg >= fixed_avg - 1e-9,
            "oracle {oracle_avg:.2} < fixed {col} {fixed_avg:.2}"
        );
    }
}

// ---------------------------------------------------------------------------
// Per-figure *ordering* assertions. Unlike the shape claims above, these pin
// the relative ranking of the techniques at test scale — the part of each
// figure a reader actually takes away. The orderings below are properties of
// the tiny-scale simulation (cross-checked against tests/golden_tiny.txt),
// not universal truths of the paper's full-size runs, so they double as a
// coarse-grained regression net over the simulators themselves.
// ---------------------------------------------------------------------------

#[test]
fn figure6_bcache_dominates_column_dominates_adaptive() {
    let t = assoc::fig6(&store());
    let avg = |c: &str| t.get("Average", c).unwrap();
    // Miss-reduction ranking: the B-cache's higher effective associativity
    // beats the column-associative pair, which beats the adaptive cache.
    assert!(
        avg("B_Cache") > avg("Column_associative"),
        "fig6 averages: B {:.2} vs column {:.2}",
        avg("B_Cache"),
        avg("Column_associative")
    );
    assert!(
        avg("Column_associative") > avg("Adaptive_Cache"),
        "fig6 averages: column {:.2} vs adaptive {:.2}",
        avg("Column_associative"),
        avg("Adaptive_Cache")
    );
    // Row-wise, the B-cache never loses to the adaptive cache: it reaches
    // full associativity within a set without the SHT/OUT bookkeeping.
    for row in t.rows.iter().filter(|r| *r != "Average") {
        let b = t.get(row, "B_Cache").unwrap();
        let a = t.get(row, "Adaptive_Cache").unwrap();
        assert!(
            b >= a - 1e-9,
            "{row}: B_Cache {b:.2} < Adaptive_Cache {a:.2}"
        );
    }
}

#[test]
fn figure7_amat_gains_are_smaller_but_keep_the_ranking() {
    let s = store();
    let t6 = assoc::fig6(&s);
    let t7 = assoc::fig7(&s);
    let avg7 = |c: &str| t7.get("Average", c).unwrap();
    // AMAT keeps the miss-rate ranking of Fig. 6…
    assert!(avg7("B_Cache") > avg7("Column_associative"));
    assert!(avg7("Column_associative") > avg7("Adaptive_Cache"));
    // …but the gains shrink for every technique, because the AMAT models
    // (Eq. 8/9) charge for the extra probes and relocations that the pure
    // miss-rate view ignores.
    for col in &t6.cols {
        let m = t6.get("Average", col).unwrap();
        let a = t7.get("Average", col).unwrap();
        assert!(a < m, "{col}: AMAT gain {a:.2}% >= miss gain {m:.2}%");
    }
}

#[test]
fn figure4_trained_schemes_rank_above_fixed_xor() {
    let t = indexing::fig4(&store());
    let avg = |c: &str| t.get("Average", c).unwrap();
    // The trace-trained scheme wins on average, and static XOR — which
    // pathologically conflicts on dijkstra/sha at this scale — loses to
    // every other scheme, ending with a net negative average.
    for col in t.cols.iter().filter(|c| *c != "XOR") {
        assert!(
            avg(col) > avg("XOR"),
            "{col} average {:.2} <= XOR {:.2}",
            avg(col),
            avg("XOR")
        );
    }
    assert!(avg("XOR") < 0.0, "XOR average {:.2}", avg("XOR"));
    for col in &t.cols {
        assert!(
            avg("Givargis") >= avg(col) - 1e-9,
            "Givargis {:.2} < {col} {:.2}",
            avg("Givargis"),
            avg(col)
        );
    }
    // Training can only avoid conflicts it has seen: Givargis never makes
    // an application worse, while its XOR hybrid inherits XOR's downside.
    for row in t.rows.iter().filter(|r| *r != "Average") {
        assert!(t.get(row, "Givargis").unwrap() >= 0.0, "{row} regressed");
    }
    assert!(avg("Givargis_Xor") < avg("Givargis"));
}
