//! The coherent hierarchy must be a pure *generalization*: with one
//! core, a pass-through L2 and a depth-0 victim buffer there is no peer
//! to snoop, nothing to rescue and nothing behind the bus, so the
//! hierarchy must reproduce the solo [`Cache`]'s per-set statistics
//! *exactly* — for every registered indexing scheme, on both reference
//! geometries. The MESI machinery, the logical clock and the lens
//! bookkeeping ride along on every access; this suite proves they never
//! perturb the underlying replacement behavior.
//!
//! A second property pins down merge order: the merged per-core view of
//! a multi-core run must not depend on the order the cores are merged
//! in (stat merging is commutative), and per-core totals must conserve
//! the trace.

use proptest::prelude::*;
use unicache::prelude::*;
use unicache::trace::synth;

fn reference_geometries() -> [CacheGeometry; 2] {
    [
        CacheGeometry::from_sets(64, 32, 1).unwrap(),
        CacheGeometry::paper_l1(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 1-core hierarchy == solo cache, for every registry scheme and
    /// both reference geometries, on a read/write mix (writes exercise
    /// the E->M silent upgrade path, which must stay invisible).
    #[test]
    fn one_core_hierarchy_matches_solo_cache(seed in 0u64..4000) {
        for geom in reference_geometries() {
            let trace = synth::uniform_rw(seed, 4000, 0x1000, 1 << 18, 0.3);
            let training = trace.unique_blocks(geom.line_bytes());
            for scheme in IndexScheme::all() {
                let index = scheme.build(geom, Some(&training)).unwrap();
                let mut solo = CacheBuilder::new(geom)
                    .index(index.clone())
                    .build()
                    .unwrap();
                solo.run(trace.records());
                let mut hier = HierarchyBuilder::new(geom, index)
                    .cores(1)
                    .victim_depth(0)
                    .l2(L2Mode::PassThrough)
                    .build()
                    .unwrap();
                hier.run(trace.records());
                prop_assert_eq!(
                    hier.core_stats(0),
                    solo.stats(),
                    "{} diverged from the solo cache at {} sets",
                    scheme.label(),
                    geom.num_sets()
                );
                // No phantom coherence traffic on one core.
                let coh = hier.coherence_stats();
                prop_assert_eq!(coh.invalidations, 0);
                prop_assert_eq!(coh.interventions, 0);
                prop_assert_eq!(coh.victim_hits, 0);
            }
        }
    }

    /// A 1-core hierarchy with a *victim buffer* must likewise match the
    /// solo victim cache of the same depth: same primary/secondary hit
    /// split, same relocations, same per-set misses.
    #[test]
    fn one_core_victim_hierarchy_matches_victim_cache(
        seed in 0u64..4000,
        depth in 1usize..9,
    ) {
        let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let trace = synth::hotspot(seed, 3000, 0, 128, 1 << 14, 0.8);
        let mut solo = VictimCache::new(CacheBuilder::new(geom), depth).unwrap();
        solo.run(trace.records());
        let sets = geom.num_sets();
        let mut hier = HierarchyBuilder::new(
            geom,
            std::sync::Arc::new(ModuloIndex::new(sets).unwrap()),
        )
        .cores(1)
        .victim_depth(depth)
        .l2(L2Mode::PassThrough)
        .build()
        .unwrap();
        hier.run(trace.records());
        prop_assert_eq!(
            hier.core_stats(0),
            solo.stats(),
            "depth-{} victim hierarchy diverged from the solo victim cache",
            depth
        );
    }

    /// Merging per-core stats is order-invariant, and the merged view
    /// conserves the trace: every record lands on exactly one core and
    /// in exactly one outcome bucket.
    #[test]
    fn merged_core_stats_are_permutation_invariant(
        seed in 0u64..4000,
        cores in 2usize..5,
    ) {
        let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let trace = synth::uniform_rw(seed, 3000, 0, 1 << 16, 0.25);
        let sets = geom.num_sets();
        let mut hier = HierarchyBuilder::new(
            geom,
            std::sync::Arc::new(ModuloIndex::new(sets).unwrap()),
        )
        .cores(cores)
        .victim_depth(2)
        .l2(L2Mode::Shared(CacheGeometry::from_sets(sets, 32, 4).unwrap()))
        .build()
        .unwrap();
        hier.run(trace.records());

        let forward = hier.merged_core_stats();
        // Reverse-order merge must agree field for field.
        let mut reversed = CacheStats::new(geom.num_sets());
        for c in (0..cores).rev() {
            reversed.merge(hier.core_stats(c));
        }
        prop_assert_eq!(&forward, &reversed, "stat merging is order-sensitive");

        let outcomes = forward.primary_hits
            + forward.secondary_hits
            + forward.misses_direct
            + forward.misses_after_probe;
        prop_assert_eq!(forward.accesses(), trace.records().len() as u64);
        prop_assert_eq!(outcomes, forward.accesses());
        // Miss attribution: one bus fetch and one data source per miss.
        let coh = hier.coherence_stats();
        prop_assert_eq!(coh.bus_reads + coh.bus_read_x, forward.misses());
        prop_assert_eq!(coh.data_sources(), forward.misses());
    }
}
