//! The coherent hierarchy must be a pure *generalization*: with one
//! core, a pass-through L2 and a depth-0 victim buffer there is no peer
//! to snoop, nothing to rescue and nothing behind the bus, so the
//! hierarchy must reproduce the solo [`Cache`]'s per-set statistics
//! *exactly* — for every registered indexing scheme, on both reference
//! geometries. The MESI machinery, the logical clock and the lens
//! bookkeeping ride along on every access; this suite proves they never
//! perturb the underlying replacement behavior.
//!
//! A second property pins down merge order: the merged per-core view of
//! a multi-core run must not depend on the order the cores are merged
//! in (stat merging is commutative), and per-core totals must conserve
//! the trace.
//!
//! A third property pins the chunked kernel (DESIGN §16): the
//! classify/commit fast path is a pure execution-order optimization, so
//! a chunked hierarchy must match its per-record twin *exactly* — stats,
//! coherence counters, lenses, shared L2, logical clock, and the
//! transcript-level cache state (resident lines, victim-buffer
//! contents) — across every registry scheme, core count, victim depth,
//! and ragged trace lengths straddling the FUSE_CHUNK boundary.

use proptest::prelude::*;
use unicache::prelude::*;
use unicache::trace::synth;

fn reference_geometries() -> [CacheGeometry; 2] {
    [
        CacheGeometry::from_sets(64, 32, 1).unwrap(),
        CacheGeometry::paper_l1(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 1-core hierarchy == solo cache, for every registry scheme and
    /// both reference geometries, on a read/write mix (writes exercise
    /// the E->M silent upgrade path, which must stay invisible).
    #[test]
    fn one_core_hierarchy_matches_solo_cache(seed in 0u64..4000) {
        for geom in reference_geometries() {
            let trace = synth::uniform_rw(seed, 4000, 0x1000, 1 << 18, 0.3);
            let training = trace.unique_blocks(geom.line_bytes());
            for scheme in IndexScheme::all() {
                let index = scheme.build(geom, Some(&training)).unwrap();
                let mut solo = CacheBuilder::new(geom)
                    .index(index.clone())
                    .build()
                    .unwrap();
                solo.run(trace.records());
                let mut hier = HierarchyBuilder::new(geom, index)
                    .cores(1)
                    .victim_depth(0)
                    .l2(L2Mode::PassThrough)
                    .build()
                    .unwrap();
                hier.run(trace.records());
                prop_assert_eq!(
                    hier.core_stats(0),
                    solo.stats(),
                    "{} diverged from the solo cache at {} sets",
                    scheme.label(),
                    geom.num_sets()
                );
                // No phantom coherence traffic on one core.
                let coh = hier.coherence_stats();
                prop_assert_eq!(coh.invalidations, 0);
                prop_assert_eq!(coh.interventions, 0);
                prop_assert_eq!(coh.victim_hits, 0);
            }
        }
    }

    /// A 1-core hierarchy with a *victim buffer* must likewise match the
    /// solo victim cache of the same depth: same primary/secondary hit
    /// split, same relocations, same per-set misses.
    #[test]
    fn one_core_victim_hierarchy_matches_victim_cache(
        seed in 0u64..4000,
        depth in 1usize..9,
    ) {
        let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let trace = synth::hotspot(seed, 3000, 0, 128, 1 << 14, 0.8);
        let mut solo = VictimCache::new(CacheBuilder::new(geom), depth).unwrap();
        solo.run(trace.records());
        let sets = geom.num_sets();
        let mut hier = HierarchyBuilder::new(
            geom,
            std::sync::Arc::new(ModuloIndex::new(sets).unwrap()),
        )
        .cores(1)
        .victim_depth(depth)
        .l2(L2Mode::PassThrough)
        .build()
        .unwrap();
        hier.run(trace.records());
        prop_assert_eq!(
            hier.core_stats(0),
            solo.stats(),
            "depth-{} victim hierarchy diverged from the solo victim cache",
            depth
        );
    }

    /// Merging per-core stats is order-invariant, and the merged view
    /// conserves the trace: every record lands on exactly one core and
    /// in exactly one outcome bucket.
    #[test]
    fn merged_core_stats_are_permutation_invariant(
        seed in 0u64..4000,
        cores in 2usize..5,
    ) {
        let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let trace = synth::uniform_rw(seed, 3000, 0, 1 << 16, 0.25);
        let sets = geom.num_sets();
        let mut hier = HierarchyBuilder::new(
            geom,
            std::sync::Arc::new(ModuloIndex::new(sets).unwrap()),
        )
        .cores(cores)
        .victim_depth(2)
        .l2(L2Mode::Shared(CacheGeometry::from_sets(sets, 32, 4).unwrap()))
        .build()
        .unwrap();
        hier.run(trace.records());

        let forward = hier.merged_core_stats();
        // Reverse-order merge must agree field for field.
        let mut reversed = CacheStats::new(geom.num_sets());
        for c in (0..cores).rev() {
            reversed.merge(hier.core_stats(c));
        }
        prop_assert_eq!(&forward, &reversed, "stat merging is order-sensitive");

        let outcomes = forward.primary_hits
            + forward.secondary_hits
            + forward.misses_direct
            + forward.misses_after_probe;
        prop_assert_eq!(forward.accesses(), trace.records().len() as u64);
        prop_assert_eq!(outcomes, forward.accesses());
        // Miss attribution: one bus fetch and one data source per miss.
        let coh = hier.coherence_stats();
        prop_assert_eq!(coh.bus_reads + coh.bus_read_x, forward.misses());
        prop_assert_eq!(coh.data_sources(), forward.misses());
    }

    /// Chunked hierarchy == per-record hierarchy, exactly, for every
    /// registry scheme × {1,2,4} cores × victim depth {0,4} × ragged
    /// chunk lengths (the `len` range crosses the FUSE_CHUNK boundary).
    #[test]
    fn chunked_hierarchy_matches_per_record(
        seed in 0u64..4000,
        cores_ix in 0usize..3,
        depth_ix in 0usize..2,
        len in 1usize..2600,
    ) {
        let cores = [1usize, 2, 4][cores_ix];
        let depth = [0usize, 4][depth_ix];
        let geom = CacheGeometry::from_sets(64, 32, 2).unwrap();
        let l2 = CacheGeometry::from_sets(256, 32, 4).unwrap();
        // Narrow span so cores genuinely share lines (S-state stores,
        // snoop invalidations — the serial-fallback cases).
        let base = synth::uniform_rw(seed, len, 0, 1 << 13, 0.3);
        let records: Vec<MemRecord> = base
            .records()
            .iter()
            .enumerate()
            .map(|(i, &r)| r.with_tid((i % cores) as u8))
            .collect();
        let training = base.unique_blocks(geom.line_bytes());
        for scheme in IndexScheme::all() {
            let index = scheme.build(geom, Some(&training)).unwrap();
            let build = |chunked: bool| {
                HierarchyBuilder::new(geom, index.clone())
                    .cores(cores)
                    .victim_depth(depth)
                    .l2(L2Mode::Shared(l2))
                    .chunked(chunked)
                    .build()
                    .unwrap()
            };
            let mut fast = build(true);
            let mut slow = build(false);
            fast.run(&records);
            slow.run(&records);
            for c in 0..cores {
                prop_assert_eq!(
                    fast.core_stats(c),
                    slow.core_stats(c),
                    "{}: core {} stats diverged (cores={}, depth={})",
                    scheme.label(), c, cores, depth
                );
                let lines_fast: Vec<_> = fast.l1(c).resident().collect();
                let lines_slow: Vec<_> = slow.l1(c).resident().collect();
                prop_assert_eq!(lines_fast, lines_slow, "{}: L1 transcript", scheme.label());
                let vb_fast: Vec<_> =
                    fast.victim_buffer(c).iter().map(|(b, &s)| (b, s)).collect();
                let vb_slow: Vec<_> =
                    slow.victim_buffer(c).iter().map(|(b, &s)| (b, s)).collect();
                prop_assert_eq!(vb_fast, vb_slow, "{}: victim transcript", scheme.label());
            }
            prop_assert_eq!(fast.coherence_stats(), slow.coherence_stats());
            prop_assert_eq!(fast.merged_lifetime(), slow.merged_lifetime());
            prop_assert_eq!(&fast.merged_recency(), &slow.merged_recency());
            prop_assert_eq!(fast.now(), slow.now());
            prop_assert_eq!(fast.shared_stats(), slow.shared_stats());
            // Conservation: every access committed on exactly one path.
            prop_assert_eq!(
                fast.fast_path_commits() + fast.serial_path_commits(),
                fast.merged_core_stats().accesses()
            );
            prop_assert_eq!(slow.fast_path_commits(), 0);
        }
    }
}
