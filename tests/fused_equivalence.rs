//! The fused kernel must be a pure optimisation: driving any group of
//! lanes through [`run_fused`] (decode each chunk once, step every lane
//! over it) must leave *identical* statistics to running each scheme
//! alone through the per-scheme batched path — for every registered
//! indexing scheme, every fusable associativity scheme, both reference
//! geometries, and any permutation of the lane order. `SimStore` relies
//! on this equivalence: fuse-groups are its unit of scheduling, and the
//! figures it feeds were validated against the per-scheme path.

use proptest::prelude::*;
use std::sync::Arc;
use unicache::prelude::*;
use unicache::trace::synth;

/// Builders for one fused/solo pair per fusable scheme family (the
/// associativity organisations plus a conventional cache under each
/// supplied index function).
fn lane_builders(geom: CacheGeometry) -> Vec<Box<dyn Fn() -> Box<dyn FusedLane>>> {
    let sets = geom.num_sets();
    vec![
        Box::new(move || Box::new(CacheBuilder::new(geom).build().unwrap())),
        Box::new(move || {
            Box::new(
                CacheBuilder::new(geom)
                    .index(Arc::new(XorIndex::new(sets).unwrap()))
                    .build()
                    .unwrap(),
            )
        }),
        Box::new(move || Box::new(ColumnAssociativeCache::new(geom).unwrap())),
        Box::new(move || Box::new(AdaptiveGroupCache::new(geom).unwrap())),
        Box::new(move || Box::new(BCache::new(geom).unwrap())),
        Box::new(move || Box::new(PartnerIndexCache::new(geom).unwrap())),
        Box::new(move || Box::new(PartnerChainCache::new(geom).unwrap())),
        Box::new(move || Box::new(SkewedCache::new(geom).unwrap())),
        Box::new(move || Box::new(VictimCache::new(CacheBuilder::new(geom), 8).unwrap())),
    ]
}

/// Drives `lanes` through one fused pass.
fn fuse(lanes: &mut [Box<dyn FusedLane>], stream: &BlockStream) {
    let mut refs: Vec<&mut dyn FusedLane> = lanes
        .iter_mut()
        .map(|l| l.as_mut() as &mut dyn FusedLane)
        .collect();
    run_fused(&mut refs, stream);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fused == solo for every registered indexing scheme
    /// (`IndexScheme::all()`), on both reference geometries. The whole
    /// registry rides one fused pass per geometry, exactly as a SimStore
    /// fuse-group would schedule it.
    #[test]
    fn fused_matches_solo_for_every_index_scheme(seed in 0u64..4000) {
        for geom in [
            CacheGeometry::from_sets(64, 32, 1).unwrap(),
            CacheGeometry::paper_l1(),
        ] {
            let trace = synth::uniform_rw(seed, 4000, 0x1000, 1 << 18, 0.3);
            let stream = BlockStream::from_records(trace.records(), geom.line_bytes());
            let training = trace.unique_blocks(geom.line_bytes());
            let schemes = IndexScheme::all();
            let mut fused: Vec<Box<dyn FusedLane>> = schemes
                .iter()
                .map(|s| {
                    Box::new(
                        CacheBuilder::new(geom)
                            .index(s.build(geom, Some(&training)).unwrap())
                            .build()
                            .unwrap(),
                    ) as Box<dyn FusedLane>
                })
                .collect();
            fuse(&mut fused, &stream);
            for (scheme, lane) in schemes.iter().zip(&fused) {
                let mut solo = CacheBuilder::new(geom)
                    .index(scheme.build(geom, Some(&training)).unwrap())
                    .build()
                    .unwrap();
                solo.run_batch(&stream);
                prop_assert_eq!(
                    solo.stats(),
                    lane.stats(),
                    "{} diverged under fusion at {} sets",
                    scheme.label(),
                    geom.num_sets()
                );
            }
        }
    }

    /// Fused == solo for every fusable associativity scheme, on a
    /// hotspot-heavy mix that exercises the relocation machinery
    /// (SHT/OUT state, rehash bits, partner links, decoder reprogramming).
    #[test]
    fn fused_matches_solo_for_every_assoc_scheme(seed in 0u64..4000) {
        for geom in [
            CacheGeometry::from_sets(64, 32, 1).unwrap(),
            CacheGeometry::paper_l1(),
        ] {
            let trace = synth::hotspot(seed, 3000, 0, 128, 1 << 14, 0.8);
            let stream = BlockStream::from_records(trace.records(), geom.line_bytes());
            let builders = lane_builders(geom);
            let mut fused: Vec<Box<dyn FusedLane>> = builders.iter().map(|mk| mk()).collect();
            fuse(&mut fused, &stream);
            for (mk, lane) in builders.iter().zip(&fused) {
                let mut solo = mk();
                solo.run_batch(&stream);
                prop_assert_eq!(
                    solo.stats(),
                    lane.stats(),
                    "{} diverged under fusion at {} sets",
                    lane.name(),
                    geom.num_sets()
                );
            }
        }
    }

    /// Lane order inside a fuse-group is irrelevant: every rotation of
    /// the group leaves every member with identical statistics (the
    /// fused traversal gives lanes no way to observe each other).
    #[test]
    fn fuse_group_is_permutation_invariant(seed in 0u64..2000, rot in 1usize..8) {
        let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let trace = synth::zipfian(seed, 2500, 0x8000, 1024, 32, 1.1);
        let stream = BlockStream::from_records(trace.records(), geom.line_bytes());
        let builders = lane_builders(geom);
        let n = builders.len();
        let mut forward: Vec<Box<dyn FusedLane>> = builders.iter().map(|mk| mk()).collect();
        fuse(&mut forward, &stream);
        let mut rotated: Vec<Box<dyn FusedLane>> =
            (0..n).map(|i| builders[(i + rot) % n]()).collect();
        fuse(&mut rotated, &stream);
        for i in 0..n {
            prop_assert_eq!(
                forward[(i + rot) % n].stats(),
                rotated[i].stats(),
                "{} depends on its position in the group",
                rotated[i].name()
            );
        }
    }
}
