//! The batched engine must be a pure optimisation: for every scheme
//! family, driving a model through [`BlockStream`]/`run_batch` must leave
//! *identical* statistics to the legacy per-record `run` — same aggregate
//! counters, same per-set histograms, same hit-location split. The figure
//! runners rely on this equivalence: `SimStore` memoizes results produced
//! by the batched path and serves them to code written against the
//! record-at-a-time semantics.

use proptest::prelude::*;
use std::sync::Arc;
use unicache::prelude::*;
use unicache::trace::synth;

/// One representative per scheme family: conventional direct-mapped,
/// the indexing schemes (Section II), and each programmable-associativity
/// organisation (Section III).
fn model_pairs(geom: CacheGeometry) -> Vec<(Box<dyn CacheModel>, Box<dyn CacheModel>)> {
    let sets = geom.num_sets();
    let fresh: Vec<Box<dyn Fn() -> Box<dyn CacheModel>>> = vec![
        Box::new(move || Box::new(CacheBuilder::new(geom).build().unwrap())),
        Box::new(move || {
            Box::new(
                CacheBuilder::new(geom)
                    .index(Arc::new(XorIndex::new(sets).unwrap()))
                    .build()
                    .unwrap(),
            )
        }),
        Box::new(move || {
            Box::new(
                CacheBuilder::new(geom)
                    .index(Arc::new(OddMultiplierIndex::new(sets, 21).unwrap()))
                    .build()
                    .unwrap(),
            )
        }),
        Box::new(move || {
            Box::new(
                CacheBuilder::new(geom)
                    .index(Arc::new(PrimeModuloIndex::new(sets).unwrap()))
                    .build()
                    .unwrap(),
            )
        }),
        Box::new(move || Box::new(ColumnAssociativeCache::new(geom).unwrap())),
        Box::new(move || Box::new(AdaptiveGroupCache::new(geom).unwrap())),
        Box::new(move || Box::new(BCache::new(geom).unwrap())),
        Box::new(move || Box::new(PartnerIndexCache::new(geom).unwrap())),
        Box::new(move || Box::new(SkewedCache::new(geom).unwrap())),
        Box::new(move || Box::new(VictimCache::new(CacheBuilder::new(geom), 8).unwrap())),
    ];
    fresh.iter().map(|mk| (mk(), mk())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `run_batch` == `run`, record for record, for every scheme family,
    /// across read/write mixes.
    #[test]
    fn run_batch_matches_per_record_run(seed in 0u64..4000) {
        let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let trace = synth::uniform_rw(seed, 4000, 0x1000, 1 << 18, 0.3);
        let stream = BlockStream::from_records(trace.records(), geom.line_bytes());
        for (mut legacy, mut batched) in model_pairs(geom) {
            for rec in trace.records() {
                legacy.access(*rec);
            }
            batched.run_batch(&stream);
            prop_assert_eq!(
                legacy.stats(),
                batched.stats(),
                "batched engine diverged for {}",
                legacy.name()
            );
        }
    }

    /// Same equivalence on a skewed (hot-set-heavy) reference pattern,
    /// which exercises the adaptive schemes' SHT/OUT machinery far more
    /// than a uniform mix does.
    #[test]
    fn run_batch_matches_on_hotspot_traces(seed in 0u64..4000) {
        let geom = CacheGeometry::from_sets(32, 32, 1).unwrap();
        let trace = synth::hotspot(seed, 3000, 0, 128, 1 << 14, 0.8);
        let stream = BlockStream::from_records(trace.records(), geom.line_bytes());
        for (mut legacy, mut batched) in model_pairs(geom) {
            legacy.run(trace.records());
            batched.run_batch(&stream);
            prop_assert_eq!(
                legacy.stats(),
                batched.stats(),
                "batched engine diverged for {}",
                legacy.name()
            );
        }
    }

    /// `run_batch_many` (the SimStore driver: one stream, many models)
    /// leaves every model exactly as if it had run alone.
    #[test]
    fn run_batch_many_is_isolation_preserving(seed in 0u64..2000) {
        let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let trace = synth::zipfian(seed, 2500, 0x8000, 1024, 32, 1.1);
        let stream = BlockStream::from_records(trace.records(), geom.line_bytes());
        let pairs = model_pairs(geom);
        let (mut solo, mut fleet): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        for m in &mut solo {
            m.run_batch(&stream);
        }
        {
            let mut refs: Vec<&mut dyn CacheModel> =
                fleet.iter_mut().map(|m| &mut **m as &mut dyn CacheModel).collect();
            run_batch_many(&mut refs, &stream);
        }
        for (s, f) in solo.iter().zip(&fleet) {
            prop_assert_eq!(s.stats(), f.stats(), "{} diverged in fleet", s.name());
        }
    }
}
