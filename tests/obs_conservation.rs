//! Conservation laws tying the `unicache-obs` hot-path counters to the
//! `CacheStats` every model already keeps. The two are maintained by
//! independent code paths (the stats by each model's bookkeeping, the
//! counters by the instrumentation calls), so agreement here means the
//! instrumentation is measuring what it claims to measure — and, because
//! the counter reads are exact equalities, that it is not perturbing or
//! double-counting the hot path.
//!
//! Under `cargo test` the root dev-dependency turns the obs `enabled`
//! feature on, so the counters are live; if this binary is ever built
//! without it, the tests skip rather than fail.
//!
//! The analysis crate runs the same class of invariants over its own LCG
//! stream (`uca check`, counter-conservation group); this suite drives a
//! different trace source (`trace::synth`) through the public facade.

use std::sync::Mutex;
use unicache::assoc::PartnerConfig;
use unicache::prelude::*;
use unicache::trace::synth;

/// The global counter sinks are process-wide; serialize every test that
/// resets and reads them. Lock, reset, run, read — all inside the guard.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn geom() -> CacheGeometry {
    CacheGeometry::from_sets(64, 32, 1).unwrap()
}

/// Resets the counters and drives a fresh synthetic trace through the
/// model, returning its final stats. Callers must hold [`OBS_LOCK`].
fn drive(model: &mut dyn CacheModel, seed: u64) -> CacheStats {
    unicache_obs::reset();
    let trace = synth::uniform_rw(seed, 12_000, 0x4000, 1 << 15, 0.25);
    model.run(trace.records());
    model.stats().clone()
}

fn outcome_sum(s: &CacheStats) -> u64 {
    s.primary_hits + s.secondary_hits + s.misses_direct + s.misses_after_probe
}

macro_rules! obs_guard {
    () => {{
        if !unicache_obs::enabled() {
            eprintln!("unicache-obs built without `enabled`; skipping");
            return;
        }
        OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }};
}

#[test]
fn baseline_probes_once_per_access() {
    use unicache_obs::Event;
    let _guard = obs_guard!();
    let mut c = CacheBuilder::new(geom()).build().unwrap();
    let s = drive(&mut c, 101);
    assert_eq!(unicache_obs::counter_value(Event::CacheProbe), s.accesses());
    assert_eq!(outcome_sum(&s), s.accesses());
    assert_eq!(s.accesses(), 12_000);
}

#[test]
fn column_associative_swap_and_reclaim_accounting() {
    use unicache_obs::Event;
    let _guard = obs_guard!();
    let mut c = ColumnAssociativeCache::new(geom()).unwrap();
    let s = drive(&mut c, 202);
    assert_eq!(
        unicache_obs::counter_value(Event::ColumnProbe),
        s.accesses()
    );
    // The alternate set is probed exactly when the first probe misses and
    // the access doesn't end as a direct (rehash-bit) miss.
    assert_eq!(
        unicache_obs::counter_value(Event::ColumnSecondProbe),
        s.secondary_hits + s.misses_after_probe
    );
    // Every secondary hit swaps the pair; every direct miss reclaims a
    // rehashed line; together swaps and displacements are the relocations.
    assert_eq!(
        unicache_obs::counter_value(Event::ColumnSwap),
        s.secondary_hits
    );
    assert_eq!(
        unicache_obs::counter_value(Event::ColumnReclaim),
        s.misses_direct
    );
    assert_eq!(
        unicache_obs::counter_value(Event::ColumnSwap)
            + unicache_obs::counter_value(Event::ColumnDisplace),
        s.relocations
    );
}

#[test]
fn bcache_walk_histogram_totals_accesses() {
    use unicache_obs::{Event, HistEvent, BUCKETS};
    let _guard = obs_guard!();
    let mut c = BCache::new(geom()).unwrap();
    let s = drive(&mut c, 303);
    assert_eq!(
        unicache_obs::counter_value(Event::BcacheProbe),
        s.accesses()
    );
    // One walk-length sample per access, and the decoder reprograms on
    // exactly the misses.
    let walk_total: u64 = (0..BUCKETS)
        .map(|i| unicache_obs::hist_bucket(HistEvent::BcacheWalk, i))
        .sum();
    assert_eq!(walk_total, s.accesses());
    assert_eq!(
        unicache_obs::counter_value(Event::BcacheDecoderReprogram),
        s.misses()
    );
    assert!(unicache_obs::counter_value(Event::BcacheLineCompare) >= s.accesses());
}

#[test]
fn adaptive_directory_accounting() {
    use unicache_obs::Event;
    let _guard = obs_guard!();
    let mut c = AdaptiveGroupCache::new(geom()).unwrap();
    let s = drive(&mut c, 404);
    assert_eq!(
        unicache_obs::counter_value(Event::AdaptiveProbe),
        s.accesses()
    );
    // OUT-directory hits are the secondary hits; SHT lookups that still
    // miss are the probed misses; relocation events match the stats.
    assert_eq!(
        unicache_obs::counter_value(Event::AdaptiveOutHit),
        s.secondary_hits
    );
    assert_eq!(
        unicache_obs::counter_value(Event::AdaptiveShtHit),
        s.misses_after_probe
    );
    assert_eq!(
        unicache_obs::counter_value(Event::AdaptiveRelocation),
        s.relocations
    );
}

#[test]
fn partner_epoch_accounting() {
    use unicache_obs::Event;
    let _guard = obs_guard!();
    let cfg = PartnerConfig {
        epoch: 1024,
        max_pairs: 16,
    };
    let mut c = PartnerIndexCache::with_config(geom(), cfg).unwrap();
    let s = drive(&mut c, 505);
    assert_eq!(
        unicache_obs::counter_value(Event::PartnerProbe),
        s.accesses()
    );
    assert_eq!(
        unicache_obs::counter_value(Event::PartnerSecondProbe),
        s.secondary_hits + s.misses_after_probe
    );
    // Repartnering fires once per completed epoch, no more, no less.
    assert_eq!(
        unicache_obs::counter_value(Event::PartnerRepartner),
        s.accesses() / cfg.epoch
    );
    assert!(unicache_obs::counter_value(Event::PartnerLend) <= s.misses_after_probe);
}

#[test]
fn skewed_probes_once_per_access() {
    use unicache_obs::Event;
    let _guard = obs_guard!();
    let mut c = SkewedCache::new(geom()).unwrap();
    let s = drive(&mut c, 606);
    assert_eq!(
        unicache_obs::counter_value(Event::SkewedProbe),
        s.accesses()
    );
    assert_eq!(outcome_sum(&s), s.accesses());
}

#[test]
fn reset_zeroes_every_counter() {
    use unicache_obs::Event;
    let _guard = obs_guard!();
    let mut c = CacheBuilder::new(geom()).build().unwrap();
    drive(&mut c, 707);
    assert!(unicache_obs::counter_value(Event::CacheProbe) > 0);
    unicache_obs::reset();
    for e in Event::ALL {
        assert_eq!(
            unicache_obs::counter_value(e),
            0,
            "{} survived reset",
            e.name()
        );
    }
    let snap = unicache_obs::snapshot();
    assert!(snap.counters.iter().all(|&(_, v)| v == 0));
    // Each histogram keeps its name in the snapshot (stable JSON shape)
    // but loses every bucket.
    assert!(snap
        .histograms
        .iter()
        .all(|(_, buckets)| buckets.is_empty()));
}

/// The batched classify/update split (DESIGN §12) attributes its one
/// `count_by(CacheProbe, chunk_len)` exactly as the scalar path's
/// per-access `count(CacheProbe)` — no double counting from the serial
/// update tail, and hit/miss attribution in `CacheStats` unchanged.
/// Runs the same stream with the SIMD tier forced on and off and
/// demands identical counters both times.
#[test]
fn batched_classify_attributes_counters_like_scalar_path() {
    use unicache::core::SimdLanes;
    use unicache_obs::Event;
    let _guard = obs_guard!();
    let trace = synth::hotspot(77, 12_003, 0, 128, 1 << 14, 0.75);
    let stream = BlockStream::from_records(trace.records(), geom().line_bytes());
    let run = |wide: bool| {
        unicache_obs::reset();
        SimdLanes::set_enabled(wide);
        let mut c = CacheBuilder::new(geom()).build().unwrap();
        run_fused(&mut [&mut c as &mut dyn FusedLane], &stream);
        SimdLanes::set_enabled(true);
        (
            unicache_obs::counter_value(Event::CacheProbe),
            c.stats().clone(),
        )
    };
    let (probes_wide, stats_wide) = run(true);
    let (probes_narrow, stats_narrow) = run(false);
    assert_eq!(stats_wide, stats_narrow, "stats diverged across the knob");
    assert_eq!(probes_wide, probes_narrow, "probe counts diverged");
    assert_eq!(probes_wide, stats_wide.accesses());
    assert_eq!(stats_wide.accesses(), 12_003);
    assert_eq!(outcome_sum(&stats_wide), stats_wide.accesses());
}
