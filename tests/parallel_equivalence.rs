//! The determinism laws the parallel executor rests on, as properties and
//! stress tests.
//!
//! `xp --jobs N` is byte-identical for every `N` because of three facts,
//! each pinned here:
//!
//! 1. **canonical collection** — [`unicache_exec::Executor::map`] places
//!    results by input index, so its output equals the sequential map for
//!    any worker count and any steal schedule;
//! 2. **exactly-once simulation** — [`TraceStore`]/[`SimStore`] run each
//!    distinct key's work once no matter how many threads race on it;
//! 3. **order-invariant merges** — [`CacheStats::merge`] and the obs
//!    [`CounterSet`]/[`Histogram`] merges give the same total under any
//!    permutation of the per-job / per-thread contributions, so the fold
//!    order (which *is* scheduling-dependent) can never leak into output.
//!
//! Permutations are derived from proptest-supplied seeds via a
//! Fisher–Yates shuffle over a local xorshift generator — no host
//! randomness, so failures replay exactly.

use proptest::prelude::*;
use std::sync::Arc;
use unicache_core::{CacheStats, HitWhere};
use unicache_experiments::{SchemeId, SimStore, TraceStore};
use unicache_obs::{CounterSet, Event, Histogram};
use unicache_workloads::{Scale, Workload};

/// Deterministic xorshift64* stream for seed-derived shuffles.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A seed-determined permutation of `0..n` (Fisher–Yates).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = XorShift(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

const OUTCOMES: [HitWhere; 4] = [
    HitWhere::Primary,
    HitWhere::Secondary,
    HitWhere::MissDirect,
    HitWhere::MissAfterProbe,
];

/// One job's worth of stats over `sets` sets, driven by an op list.
fn stats_from_ops(sets: usize, ops: &[(usize, usize)]) -> CacheStats {
    let mut st = CacheStats::new(sets);
    for &(set, outcome) in ops {
        st.record(set % sets, OUTCOMES[outcome % OUTCOMES.len()]);
        if outcome % 3 == 0 {
            st.record_eviction(set % sets);
        }
        if outcome % 5 == 0 {
            st.record_write();
            st.record_relocation();
        }
    }
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Folding per-job [`CacheStats`] in any permutation gives the same
    /// aggregate — completion order cannot change a merged figure.
    #[test]
    fn cache_stats_merge_is_order_invariant(
        jobs in proptest::collection::vec(
            proptest::collection::vec((0usize..8, 0usize..20), 0..12),
            1..8,
        ),
        seed in proptest::num::u64::ANY,
    ) {
        let parts: Vec<CacheStats> = jobs.iter().map(|ops| stats_from_ops(8, ops)).collect();
        let fold = |order: &[usize]| {
            let mut acc = CacheStats::new(8);
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let canonical: Vec<usize> = (0..parts.len()).collect();
        let shuffled = permutation(parts.len(), seed);
        prop_assert_eq!(fold(&canonical), fold(&shuffled));
    }

    /// Folding per-thread obs shards in any permutation gives the same
    /// counters and histograms — the shard registry's (scheduling-
    /// dependent) registration order cannot leak into metrics JSON.
    #[test]
    fn obs_shard_folds_are_permutation_invariant(
        shards in proptest::collection::vec(
            proptest::collection::vec((0usize..Event::COUNT, 0u64..1 << 40), 0..10),
            1..10,
        ),
        seed in proptest::num::u64::ANY,
    ) {
        let counters: Vec<CounterSet> = shards
            .iter()
            .map(|adds| {
                let mut c = CounterSet::new();
                for &(i, n) in adds {
                    c.add(Event::ALL[i % Event::COUNT], n);
                }
                c
            })
            .collect();
        let hists: Vec<Histogram> = shards
            .iter()
            .map(|adds| {
                let mut h = Histogram::new();
                for &(_, n) in adds {
                    h.observe(n);
                }
                h
            })
            .collect();
        let order = permutation(shards.len(), seed);
        let fold_c = |ord: &[usize]| {
            ord.iter().fold(CounterSet::new(), |acc, &i| acc.merge(&counters[i]))
        };
        let fold_h = |ord: &[usize]| {
            ord.iter().fold(Histogram::new(), |acc, &i| acc.merge(&hists[i]))
        };
        let canonical: Vec<usize> = (0..shards.len()).collect();
        prop_assert_eq!(fold_c(&canonical), fold_c(&order));
        prop_assert_eq!(fold_h(&canonical), fold_h(&order));
    }

    /// The executor's map equals the sequential map for every worker
    /// count — results are slotted by input index, never completion order.
    #[test]
    fn executor_map_equals_sequential_for_any_job_count(
        items in proptest::collection::vec(0u64..1 << 32, 0..64),
        jobs in 1usize..9,
    ) {
        let f = |&x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let sequential: Vec<u64> = items.iter().map(f).collect();
        let parallel = unicache_exec::Executor::new(jobs).map(&items, f);
        prop_assert_eq!(sequential, parallel);
    }
}

/// 8 threads hammer one [`TraceStore`] over per-thread permutations of
/// the same key list: every caller gets the same `Arc`, and each trace
/// generates exactly once.
#[test]
fn trace_store_survives_an_eight_thread_hammer() {
    let store = TraceStore::new(Scale::Tiny);
    let keys = [
        Workload::Crc,
        Workload::Bitcount,
        Workload::Sha,
        Workload::Fft,
        Workload::Qsort,
    ];
    let per_thread: Vec<Vec<Arc<unicache_trace::Trace>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let store = &store;
                s.spawn(move || {
                    permutation(keys.len(), 0xdead_beef + t)
                        .into_iter()
                        .map(|i| store.get(keys[i]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("hammer thread"))
            .collect()
    });
    assert_eq!(
        store.cached(),
        keys.len(),
        "each key generated exactly once"
    );
    for got in &per_thread {
        assert_eq!(got.len(), keys.len());
    }
    // Every thread saw the same allocation per key, whatever its order.
    for (t, got) in per_thread.iter().enumerate() {
        let order = permutation(keys.len(), 0xdead_beef + t as u64);
        for (slot, &i) in order.iter().enumerate() {
            assert!(
                Arc::ptr_eq(&got[slot], &store.get(keys[i])),
                "thread {t} slot {slot} returned a duplicate generation"
            );
        }
    }
}

/// 8 threads hammer one [`SimStore`] over per-thread permutations of a
/// (workload, scheme) grid: `sims_run` lands on exactly the number of
/// distinct keys, and every caller observed the same result `Arc`.
#[test]
fn sim_store_simulates_each_key_exactly_once_under_contention() {
    let store = SimStore::new(Scale::Tiny);
    let geom = unicache_core::CacheGeometry::paper_l1();
    let keys: Vec<(Workload, SchemeId)> = [Workload::Crc, Workload::Sha, Workload::Qsort]
        .iter()
        .flat_map(|&w| {
            [SchemeId::Baseline, SchemeId::ColumnAssoc, SchemeId::Skewed]
                .iter()
                .map(move |&s| (w, s))
        })
        .collect();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let store = &store;
            let keys = &keys;
            s.spawn(move || {
                for i in permutation(keys.len(), 0xfeed_f00d + t) {
                    let (w, scheme) = keys[i];
                    let stats = store.stats(w, scheme, geom);
                    assert!(stats.accesses() > 0);
                }
            });
        }
    });
    assert_eq!(
        store.sims_run(),
        keys.len() as u64,
        "contended requests must collapse onto one simulation per key"
    );
    assert_eq!(store.cached_results(), keys.len());
    // A quiesced re-read is all hits and changes nothing.
    let before = store.hits();
    for &(w, scheme) in &keys {
        store.stats(w, scheme, geom);
    }
    assert_eq!(store.sims_run(), keys.len() as u64);
    assert_eq!(store.hits(), before + keys.len() as u64);
}
