//! Golden-trace regression: `xp all --scale tiny` must reproduce the
//! committed transcript byte for byte.
//!
//! The entire workspace is deterministic — synthetic workloads, seeded
//! RNG shims, fixed-point rendering — so any byte of drift in this
//! transcript is a behaviour change, not noise. The test renders
//! in-process through [`unicache::experiments::render_all`], which is
//! exactly what the `xp` binary prints (see `crates/experiments/src/
//! runner.rs`), so no subprocess or binary path is involved.
//!
//! To refresh after an *intentional* change:
//!
//! ```text
//! cargo run --release --bin xp -- all --scale tiny > tests/golden_tiny.txt
//! ```
//!
//! and explain the drift in the commit message.

use unicache::prelude::*;

const GOLDEN: &str = include_str!("golden_tiny.txt");

/// Reports the first differing line with context, so a drift failure
/// shows *where* the transcript changed rather than two 24 kB blobs.
fn first_diff(got: &str, want: &str) -> String {
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            return format!(
                "first diff at line {}:\n  got:  {g:?}\n  want: {w:?}",
                i + 1
            );
        }
    }
    format!(
        "one transcript is a prefix of the other (got {} lines, want {})",
        got.lines().count(),
        want.lines().count()
    )
}

#[test]
fn xp_all_tiny_matches_committed_golden() {
    let store = SimStore::new(Scale::Tiny);
    let got = unicache::experiments::render_all(&store, false, Workload::Fft);
    assert!(
        got == GOLDEN,
        "tiny-scale transcript drifted from tests/golden_tiny.txt\n{}",
        first_diff(&got, GOLDEN)
    );
}

#[test]
fn golden_covers_every_registered_experiment() {
    // The transcript stays honest: every experiment in the registry has
    // its banner in the golden file, so nobody can add a figure without
    // extending the regression surface.
    assert_eq!(unicache::experiments::ALL_EXPERIMENTS.len(), 25);
    for name in [
        "Fig. 1",
        "Fig. 4",
        "Fig. 6",
        "Fig. 7",
        "Fig. 13",
        "Fig. 14",
        "Coherent hierarchy",
        "Model: analytical miss-rate predictions",
    ] {
        assert!(GOLDEN.contains(name), "golden transcript lost {name}");
    }
    assert!(GOLDEN.contains("selected technique per application"));
}

/// The coherent sweep is deterministic under every execution knob the
/// `xp` binary exposes: worker count (`--jobs 1/2/8`), the SIMD tier
/// toggle (`--no-simd`), and rendering twice from one process. Each
/// variant must produce byte-identical output.
#[test]
fn coherent_transcript_is_execution_invariant() {
    let render = || {
        let store = SimStore::new(Scale::Tiny);
        unicache::experiments::render_experiment(&store, "coherent", false, Workload::Fft)
            .expect("coherent is registered")
    };
    unicache::exec::set_global_jobs(1);
    let jobs1 = render();
    unicache::exec::set_global_jobs(2);
    let jobs2 = render();
    unicache::exec::set_global_jobs(8);
    let jobs8 = render();
    unicache::core::SimdLanes::set_enabled(false);
    let scalar = render();
    unicache::core::SimdLanes::set_enabled(true);
    unicache::exec::set_global_jobs(1);
    let again = render();
    assert_eq!(jobs1, jobs2, "--jobs 2 changed the coherent transcript");
    assert_eq!(jobs1, jobs8, "--jobs 8 changed the coherent transcript");
    assert_eq!(jobs1, scalar, "--no-simd changed the coherent transcript");
    assert_eq!(jobs1, again, "re-rendering changed the coherent transcript");
    assert!(jobs1.contains("Coherent hierarchy"), "banner missing");
}

/// The model table (and its predictions fan out over the executor like
/// any other figure) is deterministic under the same execution knobs:
/// worker count, the SIMD tier toggle, and re-rendering in-process.
#[test]
fn model_transcript_is_execution_invariant() {
    let render = || {
        let store = SimStore::new(Scale::Tiny);
        unicache::experiments::render_experiment(&store, "model", false, Workload::Fft)
            .expect("model is registered")
    };
    unicache::exec::set_global_jobs(1);
    let jobs1 = render();
    unicache::exec::set_global_jobs(2);
    let jobs2 = render();
    unicache::exec::set_global_jobs(8);
    let jobs8 = render();
    unicache::core::SimdLanes::set_enabled(false);
    let scalar = render();
    unicache::core::SimdLanes::set_enabled(true);
    unicache::exec::set_global_jobs(1);
    let again = render();
    assert_eq!(jobs1, jobs2, "--jobs 2 changed the model transcript");
    assert_eq!(jobs1, jobs8, "--jobs 8 changed the model transcript");
    assert_eq!(jobs1, scalar, "--no-simd changed the model transcript");
    assert_eq!(jobs1, again, "re-rendering changed the model transcript");
    assert!(
        jobs1.contains("Model: analytical miss-rate predictions"),
        "banner missing"
    );
}
