//! The SIMD tier must be a pure optimisation (DESIGN §12): every 8-wide
//! kernel — the per-scheme `index_many` bodies and the direct-mapped
//! batched classify — must agree element-for-element with the scalar
//! path it replaces, on every registered scheme, both reference
//! geometries, and ragged lengths (chunk % 8 != 0). These tests toggle
//! the global ablation knob (`SimdLanes::set_enabled`), so every
//! knob-toggling test serializes on one lock and restores the default.

use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};
use unicache::core::{SimdLanes, SIMD_LANES};
use unicache::prelude::*;
use unicache::trace::synth;

/// Knob-toggling tests must not interleave: a test that turns the tier
/// off must not race one that assumes it is on.
static KNOB: Mutex<()> = Mutex::new(());

fn knob_lock() -> MutexGuard<'static, ()> {
    match KNOB.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The check-matrix geometries: the small 64-set shape and the paper's
/// 1024-set L1.
fn geometries() -> [CacheGeometry; 2] {
    [
        CacheGeometry::from_sets(64, 32, 1).unwrap(),
        CacheGeometry::paper_l1(),
    ]
}

/// Deterministic training blocks for the Givargis variants.
fn training_blocks() -> Vec<u64> {
    (0..4096u64)
        .map(|i| i.wrapping_mul(2654435761) >> 7)
        .collect()
}

/// Lengths straddling the 8-lane and chunk boundaries, ragged tails
/// included.
const RAGGED_LENGTHS: [usize; 9] = [0, 1, 7, 8, 9, 63, 1024, 1025, 2500 + 3];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `index_many` == `index_block` element-for-element for every
    /// registry scheme, with the SIMD tier forced on *and* forced off —
    /// the wide kernel, the scalar fallback and the per-element method
    /// must be three spellings of the same function.
    #[test]
    fn index_many_matches_index_block_for_every_scheme(seed in proptest::num::u64::ANY) {
        let _g = knob_lock();
        let training = training_blocks();
        for geom in geometries() {
            for scheme in IndexScheme::all() {
                let f = scheme.build(geom, Some(&training)).unwrap();
                for &len in &RAGGED_LENGTHS {
                    let blocks: Vec<u64> = (0..len as u64)
                        .map(|i| seed.wrapping_mul(i.wrapping_add(0x9E3779B97F4A7C15)) >> 5)
                        .collect();
                    let mut wide = vec![usize::MAX; len];
                    let mut narrow = vec![usize::MAX; len];
                    SimdLanes::set_enabled(true);
                    f.index_many(&blocks, &mut wide);
                    SimdLanes::set_enabled(false);
                    f.index_many(&blocks, &mut narrow);
                    SimdLanes::set_enabled(true);
                    for (i, &b) in blocks.iter().enumerate() {
                        let expect = f.index_block(b);
                        prop_assert_eq!(
                            wide[i], expect,
                            "{} wide lane {} of {} diverged at {} sets",
                            scheme.label(), i, len, geom.num_sets()
                        );
                        prop_assert_eq!(narrow[i], expect);
                    }
                }
            }
        }
    }

    /// The batched classify/update split leaves stats identical to the
    /// scalar per-record path for every registry scheme on a conflict-
    /// heavy mix — including chunks whose classify verdicts go stale
    /// mid-chunk (fills landing in sets revisited later in the chunk).
    #[test]
    fn batched_classify_matches_scalar_path_for_every_scheme(seed in 0u64..4000) {
        let _g = knob_lock();
        let training = training_blocks();
        for geom in geometries() {
            // 2507 records: ragged final chunk (2507 % 1024 = 459, 459 % 8 = 3).
            let trace = synth::hotspot(seed, 2507, 0, 96, 1 << 14, 0.7);
            let stream = BlockStream::from_records(trace.records(), geom.line_bytes());
            for scheme in IndexScheme::all() {
                let mk = || {
                    CacheBuilder::new(geom)
                        .index(scheme.build(geom, Some(&training)).unwrap())
                        .build()
                        .unwrap()
                };
                let mut wide = mk();
                let mut narrow = mk();
                SimdLanes::set_enabled(true);
                run_fused(&mut [&mut wide as &mut dyn FusedLane], &stream);
                SimdLanes::set_enabled(false);
                run_fused(&mut [&mut narrow as &mut dyn FusedLane], &stream);
                SimdLanes::set_enabled(true);
                prop_assert_eq!(
                    wide.stats(), narrow.stats(),
                    "{} batched path diverged at {} sets",
                    scheme.label(), geom.num_sets()
                );
                // Final contents must agree too, not only the counters.
                for rec in trace.records().iter().take(200) {
                    let b = geom.block_addr(rec.addr);
                    prop_assert_eq!(wide.contains_block(b), narrow.contains_block(b));
                }
            }
        }
    }

    /// `classify_chunk` (the read-only probe the phase benchmark uses)
    /// agrees with `contains_block` per element and counts nothing.
    #[test]
    fn classify_chunk_matches_contains_block(seed in 0u64..4000, len in 1usize..200) {
        for geom in geometries() {
            let trace = synth::uniform_rw(seed, 1500, 0x2000, 1 << 16, 0.25);
            let stream = BlockStream::from_records(trace.records(), geom.line_bytes());
            let mut cache = CacheBuilder::new(geom).build().unwrap();
            run_fused(&mut [&mut cache as &mut dyn FusedLane], &stream);
            let stats_before = cache.stats().clone();
            let blocks: Vec<u64> = (0..len as u64)
                .map(|i| seed.wrapping_mul(i * 2 + 1) % (1 << 12))
                .collect();
            let mut hits = vec![false; len];
            prop_assert!(cache.classify_chunk(&blocks, &mut hits));
            for (i, &b) in blocks.iter().enumerate() {
                prop_assert_eq!(hits[i], cache.contains_block(b), "slot {}", i);
            }
            prop_assert_eq!(&stats_before, cache.stats(), "classify_chunk mutated stats");
        }
    }
}

/// Deterministic worst case for classify staleness: conflicting blocks
/// revisited inside a single chunk, in every hit/miss interleaving the
/// 4-set cache can express — with writes mixed in, under both
/// write-allocate policies.
#[test]
fn intra_chunk_conflicts_match_scalar_path_exactly() {
    let _g = knob_lock();
    let geom = CacheGeometry::from_sets(4, 32, 1).unwrap();
    // Blocks 0,4,8 all land in set 0 under conventional indexing; the
    // pattern revisits each within one FUSE_CHUNK so classify verdicts
    // go stale in both directions (new fill hits, displaced block misses).
    let mut addrs = Vec::new();
    for round in 0..300u64 {
        for &b in &[0u64, 4, 0, 8, 4, 0, 8, 8, 1, 5, 0] {
            addrs.push((b + (round % 3)) * 32);
        }
    }
    let records: Vec<MemRecord> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| MemRecord {
            addr: a,
            kind: if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            tid: 0,
        })
        .collect();
    let stream = BlockStream::from_records(&records, geom.line_bytes());
    for write_allocate in [true, false] {
        let mk = || {
            CacheBuilder::new(geom)
                .write_allocate(write_allocate)
                .build()
                .unwrap()
        };
        let mut wide = mk();
        let mut narrow = mk();
        SimdLanes::set_enabled(true);
        run_fused(&mut [&mut wide as &mut dyn FusedLane], &stream);
        SimdLanes::set_enabled(false);
        run_fused(&mut [&mut narrow as &mut dyn FusedLane], &stream);
        SimdLanes::set_enabled(true);
        assert_eq!(
            wide.stats(),
            narrow.stats(),
            "staleness handling diverged (write_allocate={write_allocate})"
        );
    }
}

/// An all-hits chunk takes the bulk-commit path (no replacement
/// bookkeeping at all); its stats must still match the scalar replay.
#[test]
fn all_hits_bulk_commit_matches_scalar_path() {
    let _g = knob_lock();
    let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
    // Warm-up stream touches every block once; the main stream then
    // cycles the same resident working set (alternating reads/writes),
    // so every post-warm-up chunk is all-hits.
    let working_set: Vec<u64> = (0..64u64).collect();
    let mut addrs: Vec<u64> = working_set.iter().map(|&b| b * 32).collect();
    for round in 0..100u64 {
        addrs.extend(working_set.iter().map(|&b| b * 32 + (round % 4)));
    }
    let records: Vec<MemRecord> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| MemRecord {
            addr: a,
            kind: if i % 2 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            tid: 0,
        })
        .collect();
    let stream = BlockStream::from_records(&records, geom.line_bytes());
    let mut wide = CacheBuilder::new(geom).build().unwrap();
    let mut narrow = CacheBuilder::new(geom).build().unwrap();
    SimdLanes::set_enabled(true);
    run_fused(&mut [&mut wide as &mut dyn FusedLane], &stream);
    SimdLanes::set_enabled(false);
    run_fused(&mut [&mut narrow as &mut dyn FusedLane], &stream);
    SimdLanes::set_enabled(true);
    assert_eq!(wide.stats(), narrow.stats());
    // Sanity: the pattern really was hit-dominated.
    assert!(wide.stats().miss_rate() < 0.05);
}

/// SIMD_LANES is the one width every kernel is written against; the
/// ragged-length lists in this file assume it.
#[test]
fn lane_width_is_eight() {
    assert_eq!(SIMD_LANES, 8);
}

/// `Arc`-wrapped functions forward `index_many` to the concrete batched
/// body (the fused kernel always calls through `Arc<dyn IndexFunction>`).
#[test]
fn arc_wrapper_forwards_batched_body() {
    let f: Arc<dyn IndexFunction> = Arc::new(XorIndex::new(1024).unwrap());
    let blocks: Vec<u64> = (0..100u64).map(|i| i * 977).collect();
    let mut out = vec![0usize; blocks.len()];
    f.index_many(&blocks, &mut out);
    for (i, &b) in blocks.iter().enumerate() {
        assert_eq!(out[i], f.index_block(b));
    }
}
