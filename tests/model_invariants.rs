//! Cross-model invariants: every cache organisation in the workspace must
//! agree on conservation laws and ordering relations, whatever the trace.

use proptest::prelude::*;
use std::sync::Arc;
use unicache::prelude::*;
use unicache::sim::belady;
use unicache::trace::synth;

fn all_models(geom: CacheGeometry) -> Vec<Box<dyn CacheModel>> {
    let sets = geom.num_sets();
    vec![
        Box::new(CacheBuilder::new(geom).build().unwrap()),
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(XorIndex::new(sets).unwrap()))
                .build()
                .unwrap(),
        ),
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(OddMultiplierIndex::new(sets, 21).unwrap()))
                .build()
                .unwrap(),
        ),
        Box::new(
            CacheBuilder::new(geom)
                .index(Arc::new(PrimeModuloIndex::new(sets).unwrap()))
                .build()
                .unwrap(),
        ),
        Box::new(ColumnAssociativeCache::new(geom).unwrap()),
        Box::new(AdaptiveGroupCache::new(geom).unwrap()),
        Box::new(BCache::new(geom).unwrap()),
        Box::new(PartnerIndexCache::new(geom).unwrap()),
        Box::new(PartnerChainCache::new(geom).unwrap()),
        Box::new(SkewedCache::new(geom).unwrap()),
        Box::new(VictimCache::new(CacheBuilder::new(geom), 8).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_laws_hold_for_every_model(seed in 0u64..5000) {
        let geom = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let trace = synth::uniform_rw(seed, 3000, 0x1000, 1 << 16, 0.3);
        for mut model in all_models(geom) {
            model.run(trace.records());
            let s = model.stats().clone();
            // Accesses conserved.
            prop_assert_eq!(s.accesses(), 3000, "{}", model.name());
            // Aggregate counters equal per-set sums.
            let per_set_acc: u64 = s.per_set().iter().map(|x| x.accesses).sum();
            let per_set_hits: u64 = s.per_set().iter().map(|x| x.hits).sum();
            let per_set_misses: u64 = s.per_set().iter().map(|x| x.misses).sum();
            prop_assert_eq!(per_set_acc, s.accesses(), "{}", model.name());
            prop_assert_eq!(per_set_hits, s.hits(), "{}", model.name());
            prop_assert_eq!(per_set_misses, s.misses(), "{}", model.name());
            // Writes counted once per store.
            prop_assert_eq!(s.writes as usize, trace.write_count(), "{}", model.name());
            // Rates well-formed.
            prop_assert!((0.0..=1.0).contains(&s.miss_rate()));
            prop_assert!((s.miss_rate() + s.hit_rate() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rerun_after_flush_is_deterministic(seed in 0u64..2000) {
        let geom = CacheGeometry::from_sets(32, 32, 1).unwrap();
        let trace = synth::zipfian(seed, 2000, 0x8000, 256, 32, 1.1);
        for mut model in all_models(geom) {
            model.run(trace.records());
            let first = model.stats().clone();
            model.flush();
            model.run(trace.records());
            prop_assert_eq!(&first, model.stats(), "{} diverged after flush", model.name());
        }
    }

    #[test]
    fn belady_lower_bounds_every_model(seed in 0u64..2000) {
        let geom = CacheGeometry::from_sets(16, 32, 1).unwrap();
        let trace = synth::hotspot(seed, 1500, 0, 256, 1 << 12, 0.7);
        let min = belady::min_misses(trace.records(), geom.num_lines(), geom.line_bytes());
        for mut model in all_models(geom) {
            model.run(trace.records());
            prop_assert!(
                model.stats().misses() >= min,
                "{} beat Belady: {} < {min}",
                model.name(),
                model.stats().misses()
            );
        }
    }

    #[test]
    fn higher_associativity_never_loses_to_direct_mapped_with_lru_on_loops(
        span_lines in 8u64..64
    ) {
        // For cyclic loops within capacity, LRU set-associative caches are
        // monotone in associativity (stack property per set).
        let geom1 = CacheGeometry::from_sets(64, 32, 1).unwrap();
        let geom4 = CacheGeometry::from_sets(16, 32, 4).unwrap();
        let trace = synth::strided(4000, 0, 32, span_lines * 32);
        let mut dm = CacheBuilder::new(geom1).build().unwrap();
        let mut sa = CacheBuilder::new(geom4).build().unwrap();
        dm.run(trace.records());
        sa.run(trace.records());
        // Working set fits both caches: both see only cold misses.
        prop_assert_eq!(dm.stats().misses(), span_lines);
        prop_assert_eq!(sa.stats().misses(), span_lines);
    }
}

#[test]
fn amat_formula_matches_hierarchy_measurement_for_conventional_cache() {
    // The closed-form conventional AMAT must equal the cycle-accounting
    // hierarchy when the L2 never misses after warm-up; compare on a
    // trace whose working set fits L2.
    let lat = LatencyModel {
        l1_hit: 1.0,
        l2_hit: 18.0,
        memory: 200.0,
        ..Default::default()
    };
    let trace = synth::zipfian(7, 30_000, 0x10000, 2048, 32, 1.0);
    let l1 = Box::new(
        CacheBuilder::new(CacheGeometry::paper_l1())
            .build()
            .unwrap(),
    );
    let mut h = Hierarchy::paper(l1, 2.0, lat);
    // Warm up L2 fully, then measure.
    h.run(trace.records());
    h.reset_stats();
    h.run(trace.records());
    let measured = h.amat();
    let formula = amat_conventional(h.l1d().stats(), &lat);
    assert!(
        (measured - formula).abs() < 0.05 * formula,
        "measured {measured:.3} vs formula {formula:.3}"
    );
}

#[test]
fn column_associative_at_least_halves_the_two_way_gap_on_mibench_sample() {
    // Sanity link between models: on a conflict-heavy real workload the
    // column-associative cache lands between direct-mapped and 2-way.
    let trace = Workload::Fft.generate(Scale::Tiny);
    let g1 = CacheGeometry::paper_l1();
    let g2 = CacheGeometry::new(32 * 1024, 32, 2).unwrap();
    let mut dm = CacheBuilder::new(g1).build().unwrap();
    let mut two_way = CacheBuilder::new(g2).build().unwrap();
    let mut col = ColumnAssociativeCache::new(g1).unwrap();
    dm.run(trace.records());
    two_way.run(trace.records());
    col.run(trace.records());
    let (dm_m, tw_m, col_m) = (
        dm.stats().miss_rate(),
        two_way.stats().miss_rate(),
        col.stats().miss_rate(),
    );
    assert!(col_m <= dm_m, "column {col_m} worse than DM {dm_m}");
    assert!(
        col_m <= tw_m * 1.5 + 0.01,
        "column {col_m} far above 2-way {tw_m}"
    );
}
