//! Brute-force cross-checks of the analytical miss-rate model
//! (`crates/model`) on tiny geometries.
//!
//! Every closed-form quantity the model produces is recomputed here the
//! slow, obviously-correct way — exact binomial coefficients for the
//! birthday machinery, per-block set enumeration for the conflict count,
//! a naive per-set Che evaluation for the miss prediction — and the two
//! paths must agree. Geometries stay at or below 16 sets so the brute
//! force is readable and (for the binomial side) exhaustive.

use proptest::prelude::*;
use unicache::model::{alpha_threshold, expected_overflow, lru_hit_rate, predict, Prediction};
use unicache::prelude::*;
use unicache::trace::synth;

/// The registry schemes with a closed form (the trained Givargis
/// variants are `Unsupported` and have nothing to cross-check).
const CLOSED_FORM: [IndexScheme; 4] = [
    IndexScheme::Conventional,
    IndexScheme::Xor,
    IndexScheme::OddMultiplier(21),
    IndexScheme::PrimeModulo,
];

fn geom(sets: usize, ways: u32) -> CacheGeometry {
    CacheGeometry::from_sets(sets, 32, ways).expect("valid tiny geometry")
}

/// Exact Binomial(u, 1/s) pmf from explicit binomial coefficients —
/// an independent path from the log-space recurrence in
/// `crates/model/src/birthday.rs` (only valid for small `u`; C(40, 20)
/// still fits a u128 exactly).
fn brute_binomial_pmf(u: usize, s: usize) -> Vec<f64> {
    let p = 1.0 / s as f64;
    let q = 1.0 - p;
    (0..=u)
        .map(|k| {
            let mut c: u128 = 1;
            for i in 0..k {
                c = c * (u - i) as u128 / (i + 1) as u128;
            }
            c as f64 * p.powi(k as i32) * q.powi((u - k) as i32)
        })
        .collect()
}

/// `S · E[(K − ways)⁺]` straight off the brute-force pmf.
fn brute_overflow(u: usize, s: usize, ways: u32) -> f64 {
    let a = ways as f64;
    let per_set: f64 = brute_binomial_pmf(u, s)
        .iter()
        .enumerate()
        .map(|(k, &pk)| (k as f64 - a).max(0.0) * pk)
        .sum();
    s as f64 * per_set
}

#[test]
fn expected_overflow_matches_exact_binomial_enumeration() {
    // Exhaustive over every footprint ≤ 40 blocks, every tiny set count
    // and every associativity up to 4 — the full brute-forceable corner
    // of the parameter space.
    for u in 0..=40usize {
        for s in [2usize, 4, 8, 16] {
            for a in 0..=4u32 {
                let brute = brute_overflow(u, s, a);
                let got = expected_overflow(u, s, a);
                assert!(
                    (got - brute).abs() <= 1e-9 * brute.max(1.0),
                    "U={u} S={s} A={a}: model {got} brute {brute}"
                );
            }
        }
    }
}

#[test]
fn alpha_threshold_matches_linear_scan_of_brute_overflow() {
    for u in (0..=120usize).step_by(7) {
        for s in [2usize, 4, 8, 16] {
            // Replicate the threshold semantics on the brute pmf: walk up
            // from one way until the expected overflow drops below one
            // block (capped at the footprint, where overflow is zero).
            let mut a = 1u32;
            while brute_overflow(u, s, a) >= 1.0 {
                a += 1;
                if a as usize >= u {
                    break;
                }
            }
            assert_eq!(alpha_threshold(u, s), a, "U={u} S={s}");
        }
    }
}

/// Supported prediction for one scheme, unwrapped.
fn predicted(
    scheme: IndexScheme,
    g: CacheGeometry,
    summary: &unicache::model::WorkloadSummary,
) -> unicache::model::ModelOutput {
    match predict(scheme, g, summary) {
        Prediction::Supported(out) => out,
        Prediction::Unsupported { reason } => {
            panic!("{} unexpectedly unsupported: {reason}", scheme.label())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conflict_blocks_match_per_block_enumeration(
        seed in 0u64..1000,
        sets_pow in 1u32..5,
        ways in 1u32..3,
    ) {
        // ≤16 sets: walk every unique block through the scheme one at a
        // time and count set overflow directly.
        let sets = 1usize << sets_pow;
        let g = geom(sets, ways);
        let t = synth::uniform(seed, 2_000, 0x4000, 1 << 13);
        let summary = t.summarize(32);
        for scheme in CLOSED_FORM {
            let out = predicted(scheme, g, &summary);
            let f = scheme.build(g, None).expect("closed form builds");
            let mut hist = vec![0u64; sets];
            for &b in summary.blocks.iter() {
                hist[f.index_block(b)] += 1;
            }
            let brute: u64 = hist.iter().map(|&d| d.saturating_sub(ways as u64)).sum();
            prop_assert!(
                out.conflict_blocks == brute,
                "{}: model {} brute {brute}",
                scheme.label(),
                out.conflict_blocks
            );
        }
    }

    #[test]
    fn predicted_misses_match_naive_per_set_che(
        seed in 0u64..1000,
        sets_pow in 1u32..5,
        ways_pow in 0u32..3,
        zipf in proptest::bool::ANY,
    ) {
        // Re-derive the prediction with the naive data structure (one
        // Vec per set, no counting sort) and the public per-set solver.
        let sets = 1usize << sets_pow;
        let ways = 1u32 << ways_pow;
        let g = geom(sets, ways);
        let t = if zipf {
            synth::zipfian(seed, 3_000, 0x8000, 512, 32, 0.9)
        } else {
            synth::uniform(seed, 3_000, 0x4000, 1 << 13)
        };
        let summary = t.summarize(32);
        for scheme in CLOSED_FORM {
            let out = predicted(scheme, g, &summary);
            let f = scheme.build(g, None).expect("closed form builds");
            let mut per_set: Vec<Vec<u64>> = vec![Vec::new(); sets];
            for (i, &b) in summary.blocks.iter().enumerate() {
                per_set[f.index_block(b)].push(summary.counts[i]);
            }
            let mut naive = 0.0f64;
            for counts in &per_set {
                if counts.is_empty() {
                    continue;
                }
                let d = counts.len() as f64;
                let n: u64 = counts.iter().sum();
                let h = lru_hit_rate(counts, ways);
                naive += (d + (n as f64 - d) * (1.0 - h)).clamp(d, n as f64);
            }
            prop_assert!(
                (out.predicted_misses - naive).abs() < 1e-9,
                "{}: model {} naive {naive}",
                scheme.label(),
                out.predicted_misses
            );
            // Structural bounds: at least one miss per distinct block,
            // never more misses than references.
            prop_assert!(out.predicted_misses + 1e-9 >= out.compulsory as f64);
            prop_assert!(out.miss_rate <= 1.0 + 1e-12);
            prop_assert!(
                out.miss_rate + 1e-12
                    >= out.compulsory as f64 / summary.total_refs as f64
            );
        }
    }

    #[test]
    fn equal_popularity_traces_hit_the_exact_uniform_fixed_point(
        stride_pow in 0u32..3,
        ways_pow in 0u32..3,
    ) {
        let ways = 1u32 << ways_pow;
        // A strided trace touches every block equally often, so each
        // set's Che fixed point collapses to the exact h = A/D — the
        // model must match the closed formula to the last bit of f64
        // rounding.
        let g = geom(16, ways);
        let stride = 32u64 << stride_pow;
        let t = synth::strided(4_096, 0x1000, stride, stride * 64);
        let summary = t.summarize(32);
        let out = predicted(IndexScheme::Conventional, g, &summary);
        let f = IndexScheme::Conventional.build(g, None).expect("builds");
        let mut per_set: Vec<(f64, u64)> = vec![(0.0, 0); 16];
        for (i, &b) in summary.blocks.iter().enumerate() {
            let s = f.index_block(b);
            per_set[s].0 += 1.0;
            per_set[s].1 += summary.counts[i];
        }
        let exact: f64 = per_set
            .iter()
            .filter(|&&(d, _)| d > 0.0)
            .map(|&(d, n)| {
                let h = (ways as f64 / d).min(1.0);
                (d + (n as f64 - d) * (1.0 - h)).clamp(d, n as f64)
            })
            .sum();
        prop_assert!(
            (out.predicted_misses - exact).abs() < 1e-9,
            "model {} exact {exact}",
            out.predicted_misses
        );
    }
}
