//! Property tests for the pure `unicache-obs` primitives: the counter
//! merge algebra, the power-of-two histogram bucketing, and span-log
//! well-formedness. These are the laws the global (atomic, feature-gated)
//! layer relies on for determinism — commutative merges mean shard order
//! can never change a total.

use proptest::prelude::*;
use unicache_obs::{bucket_bounds, bucket_index, CounterSet, Event, Histogram, SpanLog, BUCKETS};

/// Builds a [`CounterSet`] from `(event ordinal, amount)` pairs.
fn counter_set(adds: &[(usize, u64)]) -> CounterSet {
    let mut c = CounterSet::new();
    for &(i, n) in adds {
        c.add(Event::ALL[i % Event::COUNT], n);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn counter_merge_is_commutative_and_associative(
        xs in proptest::collection::vec((0usize..Event::COUNT, 0u64..1 << 48), 0..16),
        ys in proptest::collection::vec((0usize..Event::COUNT, 0u64..1 << 48), 0..16),
        zs in proptest::collection::vec((0usize..Event::COUNT, 0u64..1 << 48), 0..16),
    ) {
        let (a, b, c) = (counter_set(&xs), counter_set(&ys), counter_set(&zs));
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        // The zero set is the merge identity, and merging equals replaying
        // both add sequences into one set (shard-split transparency).
        prop_assert_eq!(a.merge(&CounterSet::new()), a);
        let mut both = xs.clone();
        both.extend_from_slice(&ys);
        prop_assert_eq!(a.merge(&b), counter_set(&both));
    }

    #[test]
    fn every_sample_lands_in_its_bucket_bounds(v in proptest::num::u64::ANY) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} [{lo}, {hi}]");
    }

    #[test]
    fn bucket_bounds_are_exact_powers_of_two(i in 1usize..BUCKETS) {
        // Every non-zero bucket is [2^(i-1), 2^i - 1]: the low endpoint is
        // an exact power of two and the high endpoint is one less than the
        // next power (saturating at u64::MAX for the last bucket).
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo.is_power_of_two(), "bucket {i} lo {lo}");
        prop_assert_eq!(lo, 1u64 << (i - 1));
        if i < BUCKETS - 1 {
            prop_assert_eq!(hi, (1u64 << i) - 1);
        } else {
            prop_assert_eq!(hi, u64::MAX);
        }
        // Both endpoints map back into the bucket they bound.
        prop_assert_eq!(bucket_index(lo), i);
        prop_assert_eq!(bucket_index(hi), i);
    }

    #[test]
    fn histogram_merge_preserves_totals(
        xs in proptest::collection::vec(proptest::num::u64::ANY, 0..64),
        ys in proptest::collection::vec(proptest::num::u64::ANY, 0..64),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &xs { a.observe(v); }
        for &v in &ys { b.observe(v); }
        let merged = a.merge(&b);
        prop_assert_eq!(merged.total(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        // Merging equals observing the concatenation.
        let mut both = Histogram::new();
        for &v in xs.iter().chain(ys.iter()) { both.observe(v); }
        prop_assert_eq!(merged, both);
    }

    #[test]
    fn bracketed_span_logs_are_always_well_formed(
        ops in proptest::collection::vec(proptest::bool::ANY, 0..64),
    ) {
        // Any sequence of open/close operations — including closes with
        // nothing open, which are no-ops — yields a laminar event family.
        static NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
        let mut log = SpanLog::new();
        let mut expected_open = 0usize;
        for (k, &open) in ops.iter().enumerate() {
            if open {
                log.open(NAMES[k % NAMES.len()]);
                expected_open += 1;
            } else if log.close().is_some() {
                expected_open -= 1;
            }
            prop_assert_eq!(log.open_depth(), expected_open);
        }
        prop_assert!(log.is_well_formed());
        // Draining the remaining opens keeps it well-formed and empties it.
        while log.close().is_some() {}
        prop_assert_eq!(log.open_depth(), 0);
        prop_assert!(log.is_well_formed());
        for ev in log.events() {
            prop_assert!(ev.begin < ev.end);
        }
    }
}
