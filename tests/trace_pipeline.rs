//! Integration of the trace pipeline: workload generation → serialization
//! → interleaving → simulation, across crate boundaries.

use unicache::prelude::*;
use unicache::trace::io;

#[test]
fn workload_traces_survive_binary_round_trip() {
    for w in [Workload::Crc, Workload::Qsort, Workload::Sjeng] {
        let t = w.generate(Scale::Tiny);
        let bytes = io::encode(&t);
        let back = io::decode(&bytes).unwrap();
        assert_eq!(t, back, "{}", w.name());
    }
}

#[test]
fn csv_round_trip_preserves_simulation_results() {
    let t = Workload::Bitcount.generate(Scale::Tiny);
    let csv = io::to_csv(&t);
    let back = io::from_csv(&csv).unwrap();
    let geom = CacheGeometry::paper_l1();
    let mut a = CacheBuilder::new(geom).build().unwrap();
    let mut b = CacheBuilder::new(geom).build().unwrap();
    a.run(t.records());
    b.run(back.records());
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn interleaving_conserves_per_thread_miss_behaviour_in_partitioned_cache() {
    // In a statically partitioned cache, each thread's misses must be
    // identical to running it alone on a cache of its partition's size.
    let wa = Workload::Crc.generate(Scale::Tiny);
    let wb = Workload::Bitcount.generate(Scale::Tiny);
    let merged = interleave(&[wa.clone(), wb.clone()], InterleavePolicy::RoundRobin);

    let full = CacheGeometry::paper_l1(); // 1024 sets
    let mut part = PartitionedCache::new(full, 2).unwrap();
    part.run(merged.records());
    let merged_misses = part.stats().misses();

    // Each thread alone on a 512-set direct-mapped cache.
    let half = CacheGeometry::from_sets(512, 32, 1).unwrap();
    let mut solo_total = 0u64;
    for t in [&wa, &wb] {
        let mut c = CacheBuilder::new(half).build().unwrap();
        c.run(t.records());
        solo_total += c.stats().misses();
    }
    assert_eq!(merged_misses, solo_total, "partitioning must isolate");
}

#[test]
fn shared_cache_interference_is_real_and_order_dependent() {
    // Two copies of the same workload thrash a shared conventional cache
    // far more than one alone — the phenomenon Figs. 13/14 address.
    let solo = Workload::Fft.generate(Scale::Tiny);
    let merged = interleave(&[solo.clone(), solo.clone()], InterleavePolicy::RoundRobin);
    let geom = CacheGeometry::paper_l1();
    let mut alone = CacheBuilder::new(geom).build().unwrap();
    alone.run(solo.records());
    let alone_rate = alone.stats().miss_rate();

    let fns: Vec<std::sync::Arc<dyn IndexFunction>> = vec![
        std::sync::Arc::new(ModuloIndex::new(1024).unwrap()),
        std::sync::Arc::new(ModuloIndex::new(1024).unwrap()),
    ];
    let mut shared = PerThreadIndexCache::new(geom, fns).unwrap();
    shared.run(merged.records());
    let shared_rate = shared.stats().miss_rate();
    assert!(
        shared_rate > alone_rate,
        "no interference: shared {shared_rate} vs alone {alone_rate}"
    );
}

#[test]
fn tid_relabeling_and_filtering_compose() {
    let t = Workload::Sha.generate(Scale::Tiny).with_tid(3);
    assert!(t.iter().all(|r| r.tid == 3));
    assert_eq!(t.filter_tid(3).len(), t.len());
    assert_eq!(t.filter_tid(0).len(), 0);
    let merged = interleave(
        &[t.clone(), t.clone()],
        InterleavePolicy::Stochastic { seed: 1 },
    );
    // interleave() re-stamps tids by position.
    assert_eq!(merged.filter_tid(0).len(), t.len());
    assert_eq!(merged.filter_tid(1).len(), t.len());
}
